#include "engine/engine.h"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "engine/producer_session.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/random.h"
#include "util/schedule_chaos.h"

namespace tds {
namespace {

/// Items popped per writer iteration; also the natural UpdateBatch size.
constexpr size_t kDrainChunk = 4096;

/// Empty polls a writer burns through before parking — keeps the drain
/// loop hot across momentary gaps (a producer mid-cycle revisits within
/// tens of microseconds; ~20-30ns per poll, two uncontended RMWs) without
/// spinning a core when idle. On a single-core host the ladder collapses
/// to one poll: spinning can never observe new work there, because the
/// producer that would push it is starved for as long as the writer
/// spins. A fruitless park re-parks after a single confirming poll
/// instead of re-climbing the ladder, so an idle writer costs ~one poll
/// per park slice, not kIdlePollRounds of spin per slice.
constexpr uint32_t kIdlePollRounds = 1024;

/// Upper bound on one idle park, and thus on how stale a sub-threshold
/// backlog can get: pushes below half a ring don't wake the writer (see
/// PushToShard), they ride until the slice expires. Deep backlogs, space
/// waiters, drain waiters, snapshots, and commands all wake eagerly, so
/// the slice only prices the background drain cadence — long enough that
/// a fleet of parked writers doesn't preempt a busy producer every few
/// hundred microseconds with timer wakes.
constexpr std::chrono::nanoseconds kWriterParkSlice =
    std::chrono::milliseconds(4);

}  // namespace

ShardedAggregateEngine::ShardedAggregateEngine(const Options& options)
    : options_(options) {}

StatusOr<std::unique_ptr<ShardedAggregateEngine>>
ShardedAggregateEngine::Create(DecayPtr decay, const Options& options) {
  if (decay == nullptr) {
    return Status::InvalidArgument("decay function required");
  }
  if (options.shards == 0) {
    return Status::InvalidArgument("at least one shard required");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue capacity must be positive");
  }
  if (options.route_slices < options.shards) {
    return Status::InvalidArgument("route_slices must be >= shards");
  }
  if (!(options.rebalance_skew >= 1.0)) {
    return Status::InvalidArgument("rebalance_skew must be >= 1");
  }
  if (options.block_deadline < std::chrono::nanoseconds::zero()) {
    return Status::InvalidArgument("block_deadline must be non-negative");
  }
  std::unique_ptr<ShardedAggregateEngine> engine(
      new ShardedAggregateEngine(options));
  engine->decay_ = decay;
  engine->shards_.reserve(options.shards);
  for (uint32_t i = 0; i < options.shards; ++i) {
    auto shard = std::make_unique<Shard>(options.queue_capacity);
    auto registry = AggregateRegistry::Create(decay, options.registry);
    if (!registry.ok()) return registry.status();
    shard->registry.emplace(std::move(registry).value());
    engine->shards_.push_back(std::move(shard));
  }
  engine->slice_ingest_ = std::vector<Atomic<uint64_t>>(options.route_slices);
  {
    // Initial route: slices round-robin over shards, published as epoch 1.
    // No other thread can hold route_mutex_ yet; locking anyway keeps the
    // guarded-field writes inside the analyzed discipline (uncontended).
    WriterMutexLock route_lock(engine->route_mutex_);
    auto table = std::make_shared<RouteTable>();
    table->generation = 1;
    table->shard_of_slice.resize(options.route_slices);
    for (uint32_t s = 0; s < options.route_slices; ++s) {
      table->shard_of_slice[s] = s % options.shards;
    }
    engine->PublishRoute(std::move(table));
    engine->slice_ingest_seen_.assign(options.route_slices, 0);
  }
  // Registries are fully constructed before any writer starts: thread
  // creation is the happens-before edge that hands each registry to its
  // writer.
  for (auto& shard : engine->shards_) {
    Shard* raw = shard.get();
    raw->writer = std::thread([engine = engine.get(), raw] {
      engine->WriterLoop(*raw);
    });
  }
  return engine;
}

ShardedAggregateEngine::~ShardedAggregateEngine() { Stop(); }

void ShardedAggregateEngine::Stop() {
  {
    WriterMutexLock route_lock(route_mutex_);
    if (stop_.load(std::memory_order_acquire)) return;
    // Quiesce the ingest surface: the raised fence blocks new flush
    // episodes and waits out the in-flight ones (the role the exclusive
    // route lock played when producers still took it), so the drain below
    // terminates. stop_ is published seq_cst *before* the fence drops,
    // and EnterFlush checks stop_ only *after* observing a lowered fence
    // — so in the seq_cst total order any flusher admitted past the
    // fence either pushed before this quiescence (drained below) or sees
    // stop_ and fails fast with kFailedPrecondition instead of queueing
    // onto writers that are about to exit. The check order is
    // load-bearing: the stop-vs-ingest model-check suite proves this
    // pairing and catches both seeded inversions (stop after lower,
    // stop checked before the fence).
    RaiseFence();
    WaitQueuesDrained();
    stop_.store(true, std::memory_order_seq_cst);
    LowerFence();
  }
  for (auto& shard : shards_) {
    WakeWriter(*shard);
    if (shard->writer.joinable()) shard->writer.join();
  }
}

uint32_t ShardedAggregateEngine::SliceForKey(uint64_t key,
                                             uint32_t slice_count) {
  // Re-mix before reducing: the registry's table probe uses SplitMix64(key)
  // directly, so deriving the slice from a differently-salted hash keeps
  // the two partitions independent.
  return static_cast<uint32_t>(HashCombine(key, 0x7364726168735344ull) %
                               slice_count);
}

uint32_t ShardedAggregateEngine::RouteForKey(uint64_t key) const {
  const auto table = CurrentRoute();
  return table->shard_of_slice[SliceForKey(
      key, static_cast<uint32_t>(table->shard_of_slice.size()))];
}

Status ShardedAggregateEngine::Ingest(uint64_t key, Tick t, uint64_t value) {
  const KeyedItem item{key, t, value};
  return IngestBatch({&item, 1});
}

Status ShardedAggregateEngine::IngestBatch(std::span<const KeyedItem> items) {
  const Deadline deadline =
      options_.backpressure == BackpressurePolicy::kBlockWithDeadline
          ? Deadline::After(options_.block_deadline)
          : Deadline::Infinite();
  return IngestRouted(items, options_.backpressure, deadline);
}

Status ShardedAggregateEngine::TryUpdateBatch(
    std::span<const KeyedItem> items, std::chrono::nanoseconds deadline) {
  // Always the staged ladder: a caller asking for admission control wants
  // parked waiting (not a burned core) up to its deadline, regardless of
  // the engine-wide policy. A zero deadline makes one non-blocking attempt
  // per shard.
  return IngestRouted(items, BackpressurePolicy::kAdaptive,
                      Deadline::After(deadline));
}

Status ShardedAggregateEngine::IngestRouted(std::span<const KeyedItem> items,
                                            BackpressurePolicy policy,
                                            const Deadline& deadline) {
  if (items.empty()) return Status::OK();
  // The legacy surface is literally a session now: stage the whole batch
  // on an internal one-shot session and flush once against the caller's
  // deadline. staging_capacity of size+1 disables auto-flush so one
  // deadline spans the whole batch, exactly the historical contract.
  ProducerSessionOptions opts;
  opts.staging_capacity = items.size() + 1;
  opts.backpressure = policy;
  ProducerSession session(this, opts, /*internal=*/true);
  const Status staged = session.AddBatch(items);
  if (!staged.ok()) return staged;
  return session.FlushStaged(deadline);
}

Status ShardedAggregateEngine::EnterFlush(const Deadline& deadline,
                                          bool* stalled) {
  StagedWait wait(BackpressurePolicy::kAdaptive);
  while (true) {
    // seq_cst increment-then-check against RaiseFence's seq_cst
    // set-then-wait (Dekker): if our fence load below reads false, this
    // increment precedes the fence store in the total order, so the
    // fence holder's quiescence wait observes it and blocks until our
    // ExitFlush. Either the migration sees us, or we see the migration —
    // a flush can never run concurrently with a route publish.
    active_flushes_.fetch_add(1, std::memory_order_seq_cst);
    TDS_INTERLEAVE_POINT("engine.fence.enter");
    if (!fence_raised_.load(std::memory_order_seq_cst)) {
      // Fence down: check stop_ only AFTER the fence load. Stop()
      // publishes stop_ seq_cst before LowerFence's store, so in the
      // seq_cst total order observing the lowered fence implies
      // observing a concurrent Stop's stop_. Checking stop_ first
      // (the previous order) left a window — found by the
      // stop-vs-ingest model-check suite — where a flusher slipping
      // in between Stop's quiescence check and its stop_ publish read
      // both flags as clear and pushed onto an already-drained
      // engine: an acknowledged ingest whose items no writer would
      // ever apply.
      if (stop_.load(std::memory_order_seq_cst)) {
        ExitFlush();
        return Status::FailedPrecondition("engine is stopped");
      }
      return Status::OK();
    }
    // A migration holds the fence: back out (so its quiescence wait can
    // reach zero) and park until it lowers. Bounded slices via the same
    // StagedWait ladder the rings use; a missed notify costs one slice.
    ExitFlush();
    if (stalled != nullptr) *stalled = true;
    if (!wait.Step(fence_mutex_, fence_cv_, fence_waiters_, deadline)) {
      return Status::Unavailable("route fence held past the deadline");
    }
  }
}

void ShardedAggregateEngine::ExitFlush() {
  // Release: pairs with RaiseFence's seq_cst (hence acquire) load of
  // active_flushes_ — when the fence holder observes the count hit zero,
  // every ring push this episode made happens-before its drain. The
  // decrement itself is not part of the Dekker pairing (that's
  // EnterFlush's increment vs RaiseFence's fence store), so seq_cst buys
  // nothing here.
  active_flushes_.fetch_sub(1, std::memory_order_release);
  // Relaxed: only a raised fence has a quiescence waiter, and waiter
  // registration is advisory — a stale read here at worst skips a notify
  // the waiter's bounded park slice (StagedWait) re-checks past anyway.
  if (fence_raised_.load(std::memory_order_relaxed) &&
      quiesce_waiters_.load(std::memory_order_relaxed) > 0) {
    MutexLock lock(fence_mutex_);
    quiesce_cv_.NotifyAll();
  }
}

void ShardedAggregateEngine::RaiseFence() {
  // seq_cst store-then-load against EnterFlush's seq_cst add-then-load
  // (Dekker): demoting either side admits the store-buffer outcome where
  // the migration reads a stale zero count while the flusher reads a
  // stale lowered fence — a flush racing a route publish. The fence
  // model-check suite proves both the protocol and that exact demotion
  // failure (tests/modelcheck_suites_test.cc, tso mode).
  fence_raised_.store(true, std::memory_order_seq_cst);
  // Chaos point: widen the store-to-quiescence-check window the Dekker
  // pairing with EnterFlush protects.
  TDS_INTERLEAVE_POINT("engine.fence.raise");
  StagedWait wait(BackpressurePolicy::kAdaptive);
  // seq_cst: the Dekker partner load (see above); also acquires the
  // release decrements in ExitFlush, so a zero count means every
  // in-flight episode's pushes are visible to the drain that follows.
  while (active_flushes_.load(std::memory_order_seq_cst) != 0) {
    (void)wait.Step(fence_mutex_, quiesce_cv_, quiesce_waiters_,
                    Deadline::Infinite());
  }
}

void ShardedAggregateEngine::LowerFence() {
  // seq_cst: EnterFlush re-checks stop_ after observing the lowered
  // fence; keeping this store in the seq_cst total order with Stop()'s
  // stop_ publish is what makes "woke to a lowered fence" imply "sees
  // stop_ set" during shutdown (see Stop()).
  fence_raised_.store(false, std::memory_order_seq_cst);
  // Relaxed: waiter registration is advisory; a missed notify costs one
  // bounded fence park slice, not correctness.
  if (fence_waiters_.load(std::memory_order_relaxed) > 0) {
    MutexLock lock(fence_mutex_);
    fence_cv_.NotifyAll();
  }
}

Status ShardedAggregateEngine::PushToShard(Shard& shard,
                                           std::span<const KeyedItem> items,
                                           BackpressurePolicy policy,
                                           const Deadline& deadline,
                                           PushCounters* counters) {
  MutexLock lock(shard.producer_mutex);
  StagedWait wait(policy);
  Status result = Status::OK();
  size_t offset = 0;
  while (offset < items.size()) {
    size_t pushed = 0;
    // The failpoint simulates a full ring (arm it with transient
    // scenarios: a sticky fault plus an infinite deadline would model a
    // writer that never drains, i.e. a genuine hang).
    if (!TDS_FAILPOINT("engine.ring.push")) {
      pushed =
          shard.queue.TryPushN(items.data() + offset, items.size() - offset);
    }
    if (pushed > 0) {
      // seq_cst: one half of the Dekker handshake with the writer's park
      // sequence (see WakeWriter). Same x86 code as release (lock xadd).
      shard.enqueued.fetch_add(pushed, std::memory_order_seq_cst);
      // Chaos point: widen the gap between publishing work and deciding
      // whether to wake, so the writer's park decision races the count.
      TDS_INTERLEAVE_POINT("engine.push.enqueued");
      // Lazy wake: a parked writer self-wakes every kWriterParkSlice and
      // drains whatever accumulated, so steady ingest rides the ring and
      // pays no wake syscall per push (on a single-core host every such
      // wake also preempts the producer — per-push wakes there cost more
      // than the apply itself). Wake eagerly only when this push crosses
      // half the ring: the backlog is now deep enough that napping out
      // the slice risks a full ring and a parked producer. The crossing
      // test fires once per fill cycle instead of on every push while
      // the backlog stays deep.
      const size_t depth = shard.queue.SizeApprox();
      const size_t wake_depth = shard.queue.capacity() / 2;
      if (depth >= wake_depth && depth - pushed < wake_depth) {
        WakeWriter(shard);
      }
      offset += pushed;
      wait.OnProgress();
      continue;
    }
    // About to wait for space: the writer must run *now*, so bypass the
    // depth threshold (a parked writer would otherwise stretch this stall
    // to its full park slice).
    WakeWriter(shard);
    if (!wait.Step(shard.space_mutex, shard.space_cv, shard.space_waiters,
                   deadline)) {
      const uint64_t dropped = items.size() - offset;
      shard.items_rejected.fetch_add(dropped, std::memory_order_relaxed);
      if (counters != nullptr) counters->rejected += dropped;
      result = Status::Unavailable("shard queue full past the deadline");
      break;
    }
  }
  shard.park_count.fetch_add(wait.parks(), std::memory_order_relaxed);
  const uint64_t streak = wait.max_streak();
  if (counters != nullptr && wait.stalled()) counters->stalled = true;
  uint64_t prev = shard.max_queue_stall.load(std::memory_order_relaxed);
  while (streak > prev &&
         !shard.max_queue_stall.compare_exchange_weak(
             prev, streak, std::memory_order_relaxed)) {
  }
  return result;
}

Status ShardedAggregateEngine::Flush() {
  for (auto& shard : shards_) {
    const Status status = WaitShardApplied(
        *shard, shard->enqueued.load(std::memory_order_acquire));
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Status ShardedAggregateEngine::WaitShardApplied(Shard& shard,
                                                uint64_t target) {
  StagedWait wait(BackpressurePolicy::kAdaptive);
  while (shard.applied.load(std::memory_order_acquire) < target) {
    if (shard.writer_done.load(std::memory_order_acquire)) {
      // Unreachable through the public API (Stop() drains first); defends
      // against waiting forever on a writer that no longer exists.
      return Status::FailedPrecondition(
          "engine stopped with items still queued");
    }
    // Pushes below the half-ring threshold don't wake the writer; a drain
    // waiter wants the backlog applied now, not at the next park slice.
    WakeWriter(shard);
    (void)wait.Step(shard.drain_mutex, shard.drain_cv, shard.drain_waiters,
                    Deadline::Infinite());
  }
  return Status::OK();
}

void ShardedAggregateEngine::WaitQueuesDrained() {
  for (auto& shard : shards_) {
    // Chaos point: a flush may have pushed right up until the fence went
    // up; widen the race between that and the drain's `enqueued` sample.
    TDS_INTERLEAVE_POINT("engine.migrate.drain");
    // Writers are alive here (Stop() drains before raising stop_, and the
    // other callers refuse stopped engines) and the raised fence keeps
    // new pushes out, so the wait terminates.
    (void)WaitShardApplied(*shard,
                           shard->enqueued.load(std::memory_order_acquire));
  }
}

void ShardedAggregateEngine::WakeWriter(Shard& shard) {
  // Dekker handshake with the writer's park sequence: callers publish
  // work with a seq_cst store/RMW (enqueued, snapshot_requested,
  // command_requested, stop_) before this seq_cst load, and the writer
  // stores writer_parked seq_cst before its seq_cst pre-park re-check of
  // those same flags. In the single total order over seq_cst operations
  // at least one side observes the other — either this load sees the
  // writer parked (and notifies), or the writer's re-check sees the work
  // (and skips the wait). Weaker orderings permit the store-buffer
  // outcome where both read stale values and the work sits unnoticed for
  // a whole park slice. seq_cst operations rather than fences because
  // TSan does not model fences (and GCC rejects them under
  // -fsanitize=thread).
  if (!shard.writer_parked.load(std::memory_order_seq_cst)) return;
  // Chaos point: the writer may un-park or re-park between our load and
  // the lock; the notify must stay correct either way.
  TDS_INTERLEAVE_POINT("engine.wake.notify");
  // Lock then notify: if the writer is between its pre-park predicate
  // check and the wait, this blocks until the wait begins, so the notify
  // is not lost.
  MutexLock lock(shard.wake_mutex);
  shard.wake_cv.NotifyAll();
}

uint64_t ShardedAggregateEngine::ItemsApplied() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->applied.load(std::memory_order_acquire);
  }
  return total;
}

std::vector<ShardedAggregateEngine::ShardStats>
ShardedAggregateEngine::Stats() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.live_keys = shard->live_keys.load(std::memory_order_relaxed);
    s.arena_extent = shard->arena_extent.load(std::memory_order_relaxed);
    s.items_applied = shard->applied.load(std::memory_order_acquire);
    const uint64_t enqueued = shard->enqueued.load(std::memory_order_acquire);
    s.queue_depth = enqueued - std::min(enqueued, s.items_applied);
    s.items_rejected = shard->items_rejected.load(std::memory_order_relaxed);
    s.park_count = shard->park_count.load(std::memory_order_relaxed);
    s.max_queue_stall =
        shard->max_queue_stall.load(std::memory_order_relaxed);
    stats.push_back(s);
  }
  return stats;
}

ShardedAggregateEngine::SessionStats
ShardedAggregateEngine::SessionTotals() const {
  SessionStats s;
  s.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  s.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  s.items_staged = session_staged_.load(std::memory_order_relaxed);
  s.items_flushed = session_flushed_.load(std::memory_order_relaxed);
  s.flush_stalls = session_flush_stalls_.load(std::memory_order_relaxed);
  return s;
}

void ShardedAggregateEngine::UpdateStats(Shard& shard) {
  shard.live_keys.store(shard.registry->KeyCount(),
                        std::memory_order_relaxed);
  shard.arena_extent.store(shard.registry->ArenaExtent(),
                           std::memory_order_relaxed);
}

void ShardedAggregateEngine::WriterLoop(Shard& shard) {
  std::vector<KeyedItem> buffer(kDrainChunk);
  const uint32_t idle_poll_rounds =
      std::thread::hardware_concurrency() > 1 ? kIdlePollRounds : 1;
  uint32_t idle_polls = 0;
  while (true) {
    const size_t n = shard.queue.TryPopN(buffer.data(), buffer.size());
    if (n > 0) {
      idle_polls = 0;
      if (options_.apply_batched) {
        shard.registry->UpdateBatch({buffer.data(), n});
      } else {
        for (size_t i = 0; i < n; ++i) {
          shard.registry->Update(buffer[i].key, buffer[i].t, buffer[i].value);
        }
      }
      // Stats before the applied-counter release: once Flush() observes the
      // count, the occupancy mirrors are current too.
      UpdateStats(shard);
      shard.applied.fetch_add(n, std::memory_order_release);
      // Consumption freed ring space and may have completed a drain: wake
      // parked producers / flushers. Relaxed: registration is advisory —
      // a waiter whose fetch_add races these loads misses one notify and
      // re-checks within its bounded park slice (the documented one-slice
      // missed-wake bound; see StagedWait::Step).
      if (shard.space_waiters.load(std::memory_order_relaxed) > 0) {
        MutexLock lock(shard.space_mutex);
        shard.space_cv.NotifyAll();
      }
      if (shard.drain_waiters.load(std::memory_order_relaxed) > 0) {
        MutexLock lock(shard.drain_mutex);
        shard.drain_cv.NotifyAll();
      }
    }
    if (shard.snapshot_requested.exchange(false,
                                          std::memory_order_acq_rel)) {
      PublishSnapshot(shard);
    }
    if (shard.command_requested.exchange(false, std::memory_order_acq_rel)) {
      RunPendingCommand(shard);
    }
    if (n > 0) continue;  // keep draining while the queue is hot
    if (stop_.load(std::memory_order_acquire)) {
      if (shard.queue.EmptyApprox()) break;
      continue;
    }
    if (++idle_polls < idle_poll_rounds) continue;
    // Idle: park until woken (bounded slice — see kWriterParkSlice). The
    // pre-wait predicate re-check under wake_mutex pairs with WakeWriter's
    // lock-then-notify, closing the check-to-wait window; the seq_cst
    // store + seq_cst re-check loads pair with the posters' seq_cst
    // publish + WakeWriter's seq_cst load (Dekker — see WakeWriter), so a
    // poster that read writer_parked == false is guaranteed visible here.
    // Pending work is judged by enqueued vs applied rather than the ring
    // cursors: enqueued is the counter posters publish with seq_cst order
    // (applied is this thread's own, so relaxed is exact). An item pushed
    // but not yet counted can at worst ride out one park slice — the same
    // bound as any sub-threshold backlog.
    shard.writer_parked.store(true, std::memory_order_seq_cst);
    // Chaos point: the parked-flag-to-predicate-recheck window is the
    // exact interval the Dekker handshake protects; stretch it.
    TDS_INTERLEAVE_POINT("engine.park.window");
    {
      MutexLock lock(shard.wake_mutex);
      if (shard.enqueued.load(std::memory_order_seq_cst) ==
              shard.applied.load(std::memory_order_relaxed) &&
          !stop_.load(std::memory_order_seq_cst) &&
          !shard.snapshot_requested.load(std::memory_order_seq_cst) &&
          !shard.command_requested.load(std::memory_order_seq_cst)) {
        (void)shard.wake_cv.WaitFor(shard.wake_mutex, kWriterParkSlice);
      }
    }
    // Relaxed: the flag only gates WakeWriter's notify; a staler true
    // causes at most one spurious notify to an already-awake writer.
    shard.writer_parked.store(false, std::memory_order_relaxed);
    // Re-park after one confirming poll rather than resetting to zero: a
    // timed-out slice on an idle engine should not pay the full spin
    // ladder again before the next park.
    idle_polls = idle_poll_rounds;
  }
  // Serve anything that raced shutdown: a pending command first (its poster
  // is blocked on it), then a final publish so no snapshot reader hangs.
  if (shard.command_requested.exchange(false, std::memory_order_acq_rel)) {
    RunPendingCommand(shard);
  }
  PublishSnapshot(shard);
  {
    MutexLock lock(shard.snapshot_mutex);
    shard.stopped = true;
  }
  shard.snapshot_cv.NotifyAll();
  shard.writer_done.store(true, std::memory_order_release);
  // Release any waiter that raced shutdown (their predicates re-check
  // writer_done / the drained counters).
  {
    MutexLock lock(shard.drain_mutex);
  }
  shard.drain_cv.NotifyAll();
  {
    MutexLock lock(shard.space_mutex);
  }
  shard.space_cv.NotifyAll();
}

void ShardedAggregateEngine::PublishSnapshot(Shard& shard) {
  uint64_t serving;
  {
    MutexLock lock(shard.snapshot_mutex);
    serving = shard.tickets_issued;
  }
  // Clone via the snapshot codec: everything applied before this point is
  // in the clone, so any ticket issued before `serving` was read is served.
  // The encode blob is retained alongside the clone — the merged-snapshot
  // gather decodes from it without re-encoding.
  //
  // A codec failure (reachable only via failpoints; the encode/decode pair
  // is self-inverse on any registry the audits admit) publishes a null
  // snapshot: readers see "shard snapshot unavailable" / zero estimates
  // for this publish, and the next request re-publishes from the intact
  // registry — the shard keeps serving.
  auto blob = std::make_shared<std::string>();
  Status publish_status = shard.registry->EncodeState(blob.get());
  std::shared_ptr<const AggregateRegistry> clone;
  if (publish_status.ok()) {
    auto decoded =
        AggregateRegistry::Decode(decay_, options_.registry, *blob);
    if (decoded.ok()) {
      clone = std::make_shared<const AggregateRegistry>(
          std::move(decoded).value());
    } else {
      publish_status = decoded.status();
    }
  }
  if (!publish_status.ok()) blob = nullptr;
  {
    MutexLock lock(shard.snapshot_mutex);
    shard.snapshot = std::move(clone);
    shard.snapshot_blob = std::move(blob);
    shard.tickets_served = std::max(shard.tickets_served, serving);
  }
  shard.snapshot_cv.NotifyAll();
}

void ShardedAggregateEngine::RunPendingCommand(Shard& shard) {
  std::function<void(AggregateRegistry&)> fn;
  {
    MutexLock lock(shard.command_mutex);
    fn = std::move(shard.command);
    shard.command = nullptr;
  }
  if (fn) fn(*shard.registry);
  UpdateStats(shard);
  {
    MutexLock lock(shard.command_mutex);
    shard.command_done = true;
  }
  shard.command_cv.NotifyAll();
}

void ShardedAggregateEngine::RunOnWriter(
    Shard& shard, std::function<void(AggregateRegistry&)> fn) {
  {
    MutexLock lock(shard.command_mutex);
    TDS_CHECK_MSG(shard.command == nullptr,
                  "one writer command at a time (hold the route lock)");
    shard.command = std::move(fn);
    shard.command_done = false;
  }
  shard.command_requested.store(true, std::memory_order_seq_cst);
  WakeWriter(shard);
  MutexLock lock(shard.command_mutex);
  while (!shard.command_done) shard.command_cv.Wait(shard.command_mutex);
}

void ShardedAggregateEngine::RunOnWriterForTest(
    uint32_t shard, std::function<void(AggregateRegistry&)> fn) {
  TDS_CHECK_LT(shard, shards_.size());
  ReaderMutexLock route_lock(route_mutex_);
  RunOnWriter(*shards_[shard], std::move(fn));
}

std::pair<std::shared_ptr<const AggregateRegistry>,
          std::shared_ptr<const std::string>>
ShardedAggregateEngine::TakeShardSnapshot(Shard& shard) {
  uint64_t ticket;
  {
    MutexLock lock(shard.snapshot_mutex);
    ticket = ++shard.tickets_issued;
  }
  shard.snapshot_requested.store(true, std::memory_order_seq_cst);
  WakeWriter(shard);
  MutexLock lock(shard.snapshot_mutex);
  while (shard.tickets_served < ticket && !shard.stopped) {
    shard.snapshot_cv.Wait(shard.snapshot_mutex);
  }
  return {shard.snapshot, shard.snapshot_blob};
}

std::shared_ptr<const AggregateRegistry> ShardedAggregateEngine::ShardSnapshot(
    uint32_t shard_index) {
  TDS_CHECK_LT(shard_index, shards_.size());
  return TakeShardSnapshot(*shards_[shard_index]).first;
}

StatusOr<MergedSnapshot> ShardedAggregateEngine::Snapshot() {
  // Shared route lock across the whole gather: a migration between two
  // shard captures would otherwise double-count (or drop) the moving keys.
  // Concurrent flushes are fine — the cut is whatever each writer has
  // applied — so the fence is not touched.
  std::vector<std::string> blobs;
  {
    ReaderMutexLock route_lock(route_mutex_);
    // Issue every ticket first so the shard writers publish concurrently.
    for (auto& shard : shards_) {
      MutexLock lock(shard->snapshot_mutex);
      ++shard->tickets_issued;
    }
    for (auto& shard : shards_) {
      shard->snapshot_requested.store(true, std::memory_order_seq_cst);
      WakeWriter(*shard);
    }
    blobs.reserve(shards_.size());
    for (auto& shard : shards_) {
      MutexLock lock(shard->snapshot_mutex);
      const uint64_t ticket = shard->tickets_issued;
      while (shard->tickets_served < ticket && !shard->stopped) {
        shard->snapshot_cv.Wait(shard->snapshot_mutex);
      }
      if (shard->snapshot_blob == nullptr) {
        return Status::FailedPrecondition("shard snapshot unavailable");
      }
      blobs.push_back(*shard->snapshot_blob);
    }
  }
  // Decode + fold outside the lock: the blobs are already a consistent cut.
  return MergedSnapshot::FromShardBlobs(decay_, options_.registry, blobs);
}

Status ShardedAggregateEngine::EnableCheckpointTracking() {
  ReaderMutexLock route_lock(route_mutex_);
  if (stop_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "EnableCheckpointTracking on a stopped engine");
  }
  for (auto& shard : shards_) {
    RunOnWriter(*shard, [](AggregateRegistry& registry) {
      registry.EnableCheckpointTracking();
    });
  }
  ckpt_tracking_.store(true, std::memory_order_release);
  return Status::OK();
}

Status ShardedAggregateEngine::CaptureCheckpointDeltas(
    std::span<const uint64_t> since,
    std::vector<ShardCheckpointDelta>* out) {
  TDS_CHECK(out != nullptr);
  if (!checkpoint_tracking()) {
    return Status::FailedPrecondition(
        "CaptureCheckpointDeltas requires EnableCheckpointTracking");
  }
  if (since.size() != shards_.size()) {
    return Status::InvalidArgument(
        "CaptureCheckpointDeltas: one since-epoch per shard required");
  }
  out->clear();
  out->resize(shards_.size());
  // Shared route lock across every shard capture — one route-table cut, so
  // a migration's donor-eviction and receiver-update always land in the
  // same manifest generation (migrations take the lock exclusively).
  ReaderMutexLock route_lock(route_mutex_);
  if (stop_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "CaptureCheckpointDeltas on a stopped engine");
  }
  Status capture = Status::OK();
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    (*out)[i].shard = i;
    const uint64_t shard_since = since[i];
    AggregateRegistry::CheckpointDelta* delta = &(*out)[i].delta;
    Status shard_status = Status::OK();
    RunOnWriter(*shards_[i], [&](AggregateRegistry& registry) {
      shard_status = registry.CaptureCheckpointDelta(shard_since, delta);
    });
    // Keep capturing the remaining shards even after a failure: epochs a
    // failed pass already opened are harmless (the caller's committed
    // watermarks don't move), and a full pass keeps shards in lockstep.
    if (!shard_status.ok() && capture.ok()) capture = shard_status;
  }
  return capture;
}

double ShardedAggregateEngine::QueryKey(uint64_t key, Tick now) {
  // The shared route lock pins the key's shard for the duration (a
  // migration between the route read and the snapshot would serve a
  // snapshot that no longer holds the key).
  ReaderMutexLock route_lock(route_mutex_);
  const auto table = CurrentRoute();
  const uint32_t shard_index = table->shard_of_slice[SliceForKey(
      key, static_cast<uint32_t>(table->shard_of_slice.size()))];
  const auto snapshot = TakeShardSnapshot(*shards_[shard_index]).first;
  if (snapshot == nullptr) return 0.0;
  return snapshot->Query(key, std::max(now, snapshot->now()));
}

double ShardedAggregateEngine::QueryTotal(Tick now) {
  double total = 0.0;
  for (uint32_t i = 0; i < shards(); ++i) {
    const auto snapshot = ShardSnapshot(i);
    if (snapshot == nullptr) continue;
    total += snapshot->QueryTotal(std::max(now, snapshot->now()));
  }
  return total;
}

size_t ShardedAggregateEngine::KeyCount() {
  size_t total = 0;
  for (uint32_t i = 0; i < shards(); ++i) {
    const auto snapshot = ShardSnapshot(i);
    if (snapshot != nullptr) total += snapshot->KeyCount();
  }
  return total;
}

Status ShardedAggregateEngine::MoveSlicesLocked(
    uint32_t from_index, uint32_t to_index,
    const std::vector<uint32_t>& moving) {
  if (moving.empty() || from_index == to_index) return Status::OK();
  TDS_FAILPOINT_RETURN("engine.migrate");
  const auto table = CurrentRoute();
  const auto slice_count =
      static_cast<uint32_t>(table->shard_of_slice.size());
  std::vector<char> member(slice_count, 0);
  for (const uint32_t slice : moving) {
    TDS_CHECK_LT(slice, slice_count);
    TDS_CHECK(table->shard_of_slice[slice] == from_index);
    member[slice] = 1;
  }
  Shard& donor = *shards_[from_index];
  Shard& receiver = *shards_[to_index];
  // Both registry mutations run on their owner writer threads — the
  // registries are never touched from this (caller) thread. The successor
  // table publishes only after both succeed, so a failure at either step
  // leaves (or restores) every key on the shard its route entry names.
  StatusOr<AggregateRegistry> extracted =
      Status::FailedPrecondition("extraction did not run");
  RunOnWriter(donor, [&](AggregateRegistry& registry) {
    extracted = registry.ExtractIf([&](uint64_t key) {
      return member[SliceForKey(key, slice_count)] != 0;
    });
  });
  // ExtractIf fails only before moving anything (entry checks and the
  // "registry.extract" failpoint), so the donor is intact on error.
  if (!extracted.ok()) return extracted.status();
  Status merge_status = Status::OK();
  RunOnWriter(receiver, [&](AggregateRegistry& registry) {
    merge_status = registry.MergeFrom(std::move(extracted).value());
  });
  if (!merge_status.ok()) {
    // MergeFrom refused before mutating (its contract), so `extracted`
    // still owns every moving key: merge it back into the donor with
    // failpoints suppressed — recovery must not be re-injected into.
    RunOnWriter(donor, [&](AggregateRegistry& registry) {
      failpoint::SuppressionScope suppress;
      const Status undo = registry.MergeFrom(std::move(extracted).value());
      TDS_CHECK_MSG(undo.ok(), "migration rollback failed");
    });
    return merge_status;
  }
  // Chaos point: the epoch publish happens only after both registries
  // settled; perturbing just before it hunts readers (and session
  // flushes) that cached a stale table across the publish.
  TDS_INTERLEAVE_POINT("engine.route.publish");
  auto next = std::make_shared<RouteTable>();
  next->generation = table->generation + 1;
  next->shard_of_slice = table->shard_of_slice;
  for (const uint32_t slice : moving) {
    next->shard_of_slice[slice] = to_index;
  }
  PublishRoute(std::move(next));
  rebalances_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ShardedAggregateEngine::MigrateSlices(std::span<const uint32_t> slices,
                                             uint32_t to_shard) {
  if (to_shard >= shards()) {
    return Status::InvalidArgument("target shard out of range");
  }
  WriterMutexLock route_lock(route_mutex_);
  if (stop_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  const auto slice_count = route_slices();
  for (const uint32_t slice : slices) {
    if (slice >= slice_count) {
      return Status::InvalidArgument("route slice out of range");
    }
  }
  // Fence up: in-flight flushes finish, new ones wait, the drain below is
  // then final — no staged run can land between drain and publish.
  RaiseFence();
  WaitQueuesDrained();
  Status status = Status::OK();
  // Group the requested slices by current owner and move per owner. Each
  // successful move publishes a successor table, so re-read per owner.
  for (uint32_t owner = 0; owner < shards() && status.ok(); ++owner) {
    if (owner == to_shard) continue;
    const auto table = CurrentRoute();
    std::vector<uint32_t> moving;
    for (const uint32_t slice : slices) {
      if (table->shard_of_slice[slice] == owner) moving.push_back(slice);
    }
    status = MoveSlicesLocked(owner, to_shard, moving);
  }
  LowerFence();
  return status;
}

StatusOr<bool> ShardedAggregateEngine::RebalanceIfSkewed() {
  WriterMutexLock route_lock(route_mutex_);
  if (stop_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  if (shards() < 2) return false;
  // Fence + drain so the live-key stats are exact and no in-flight item
  // targets a slice about to move.
  RaiseFence();
  StatusOr<bool> outcome = RebalanceLocked();
  LowerFence();
  return outcome;
}

StatusOr<bool> ShardedAggregateEngine::RebalanceLocked() {
  WaitQueuesDrained();
  uint32_t donor_index = 0;
  uint32_t receiver_index = 0;
  for (uint32_t i = 1; i < shards(); ++i) {
    const uint64_t keys = shards_[i]->live_keys.load(std::memory_order_relaxed);
    if (keys > shards_[donor_index]->live_keys.load(std::memory_order_relaxed)) {
      donor_index = i;
    }
    if (keys <
        shards_[receiver_index]->live_keys.load(std::memory_order_relaxed)) {
      receiver_index = i;
    }
  }
  const uint64_t donor_keys =
      shards_[donor_index]->live_keys.load(std::memory_order_relaxed);
  const uint64_t receiver_keys =
      shards_[receiver_index]->live_keys.load(std::memory_order_relaxed);
  if (donor_index == receiver_index ||
      donor_keys < options_.rebalance_min_keys ||
      static_cast<double>(donor_keys) <
          options_.rebalance_skew * static_cast<double>(receiver_keys)) {
    return false;
  }
  // Per-slice live-key histogram of the donor, computed on its writer.
  const auto table = CurrentRoute();
  const auto slice_count =
      static_cast<uint32_t>(table->shard_of_slice.size());
  std::vector<uint64_t> slice_keys(slice_count, 0);
  RunOnWriter(*shards_[donor_index], [&](AggregateRegistry& registry) {
    registry.ForEachKey([&](uint64_t key, Tick, const DecayedAggregate&) {
      ++slice_keys[SliceForKey(key, slice_count)];
    });
  });
  // Offered-load heat since the last selection: sessions publish per-slice
  // ingest counts at flush; the window diff ranks *hot* slices first so a
  // small slice taking most of the traffic moves before a populous cold
  // one (live keys break rate ties, which also covers legacy-only feeds
  // where every rate is zero — the historical key-count order).
  std::vector<uint64_t> slice_rate(slice_count, 0);
  for (uint32_t s = 0; s < slice_count; ++s) {
    slice_rate[s] =
        slice_ingest_[s].load(std::memory_order_relaxed) -
        slice_ingest_seen_[s];
  }
  std::vector<uint32_t> candidates;
  for (uint32_t s = 0; s < slice_count; ++s) {
    if (table->shard_of_slice[s] == donor_index && slice_keys[s] > 0) {
      candidates.push_back(s);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](uint32_t a, uint32_t b) {
              if (slice_rate[a] != slice_rate[b]) {
                return slice_rate[a] > slice_rate[b];
              }
              if (slice_keys[a] != slice_keys[b]) {
                return slice_keys[a] > slice_keys[b];
              }
              return a < b;
            });
  // Greedy hottest-first selection: accept a slice while it still shrinks
  // the donor/receiver live-key gap (moving m keys changes the gap by
  // -2m, so a slice helps iff 2*moved + its_keys < gap) — the balance
  // arithmetic stays on keys, the *order* is by heat.
  const uint64_t gap = donor_keys - receiver_keys;
  std::vector<uint32_t> moving;
  uint64_t moved = 0;
  for (const uint32_t s : candidates) {
    if (2 * moved + slice_keys[s] < gap) {
      moving.push_back(s);
      moved += slice_keys[s];
    }
  }
  if (moving.empty()) return false;
  // Consume the observed window only when a migration actually runs: the
  // next selection then ranks by fresh heat, while fruitless trigger
  // checks keep accumulating.
  for (uint32_t s = 0; s < slice_count; ++s) {
    slice_ingest_seen_[s] = slice_ingest_[s].load(std::memory_order_relaxed);
  }
  const Status status = MoveSlicesLocked(donor_index, receiver_index, moving);
  if (!status.ok()) return status;
  return true;
}

Status ShardedAggregateEngine::Restore(MergedSnapshot snapshot) {
  WriterMutexLock route_lock(route_mutex_);
  if (stop_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine is stopped");
  }
  RaiseFence();
  const Status status = RestoreLocked(std::move(snapshot));
  LowerFence();
  return status;
}

Status ShardedAggregateEngine::RestoreLocked(MergedSnapshot snapshot) {
  WaitQueuesDrained();
  for (const auto& shard : shards_) {
    if (shard->applied.load(std::memory_order_acquire) != 0 ||
        shard->live_keys.load(std::memory_order_relaxed) != 0) {
      return Status::FailedPrecondition(
          "Restore requires a fresh engine (no items applied, no live keys)");
    }
  }
  AggregateRegistry full = std::move(snapshot).ReleaseRegistry();
  const auto table = CurrentRoute();
  const auto slice_count =
      static_cast<uint32_t>(table->shard_of_slice.size());
  for (uint32_t i = 0; i < shards(); ++i) {
    StatusOr<AggregateRegistry> part = full.ExtractIf([&](uint64_t key) {
      return table->shard_of_slice[SliceForKey(key, slice_count)] == i;
    });
    if (!part.ok()) return part.status();
    if (part->KeyCount() == 0) continue;
    Status merged = Status::OK();
    RunOnWriter(*shards_[i], [&](AggregateRegistry& registry) {
      merged = registry.MergeFrom(std::move(part).value());
    });
    // A mid-restore failure leaves the engine partially loaded: callers
    // (engine/checkpoint.h) treat any Restore error as "discard the
    // engine and retry on a fresh one".
    if (!merged.ok()) return merged;
  }
  return Status::OK();
}

}  // namespace tds
