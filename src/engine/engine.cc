#include "engine/engine.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/check.h"
#include "util/random.h"

namespace tds {
namespace {

/// Items popped per writer iteration; also the natural UpdateBatch size.
constexpr size_t kDrainChunk = 4096;

}  // namespace

ShardedAggregateEngine::ShardedAggregateEngine(const Options& options)
    : options_(options) {}

StatusOr<std::unique_ptr<ShardedAggregateEngine>>
ShardedAggregateEngine::Create(DecayPtr decay, const Options& options) {
  if (decay == nullptr) {
    return Status::InvalidArgument("decay function required");
  }
  if (options.shards == 0) {
    return Status::InvalidArgument("at least one shard required");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue capacity must be positive");
  }
  std::unique_ptr<ShardedAggregateEngine> engine(
      new ShardedAggregateEngine(options));
  engine->decay_ = decay;
  engine->shards_.reserve(options.shards);
  for (uint32_t i = 0; i < options.shards; ++i) {
    auto shard = std::make_unique<Shard>(options.queue_capacity);
    auto registry = AggregateRegistry::Create(decay, options.registry);
    if (!registry.ok()) return registry.status();
    shard->registry.emplace(std::move(registry).value());
    engine->shards_.push_back(std::move(shard));
  }
  // Registries are fully constructed before any writer starts: thread
  // creation is the happens-before edge that hands each registry to its
  // writer.
  for (auto& shard : engine->shards_) {
    Shard* raw = shard.get();
    raw->writer = std::thread([engine = engine.get(), raw] {
      engine->WriterLoop(*raw);
    });
  }
  return engine;
}

ShardedAggregateEngine::~ShardedAggregateEngine() {
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->writer.joinable()) shard->writer.join();
  }
}

uint32_t ShardedAggregateEngine::ShardForKey(uint64_t key,
                                             uint32_t shard_count) {
  // Re-mix before reducing: the registry's table probe uses SplitMix64(key)
  // directly, so deriving the shard from a differently-salted hash keeps
  // the two partitions independent.
  return static_cast<uint32_t>(HashCombine(key, 0x7364726168735344ull) %
                               shard_count);
}

void ShardedAggregateEngine::Ingest(uint64_t key, Tick t, uint64_t value) {
  const KeyedItem item{key, t, value};
  IngestBatch({&item, 1});
}

void ShardedAggregateEngine::IngestBatch(std::span<const KeyedItem> items) {
  if (items.empty()) return;
  const uint32_t shard_count = shards();
  if (shard_count == 1) {
    Shard& shard = *shards_[0];
    std::lock_guard<std::mutex> lock(shard.producer_mutex);
    size_t offset = 0;
    while (offset < items.size()) {
      const size_t pushed =
          shard.queue.TryPushN(items.data() + offset, items.size() - offset);
      shard.enqueued.fetch_add(pushed, std::memory_order_release);
      offset += pushed;
      if (offset < items.size()) std::this_thread::yield();
    }
    return;
  }
  // Partition into per-shard slices, preserving arrival order within each.
  std::vector<std::vector<KeyedItem>> buckets(shard_count);
  for (const KeyedItem& item : items) {
    buckets[ShardForKey(item.key, shard_count)].push_back(item);
  }
  for (uint32_t i = 0; i < shard_count; ++i) {
    if (buckets[i].empty()) continue;
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.producer_mutex);
    size_t offset = 0;
    while (offset < buckets[i].size()) {
      const size_t pushed = shard.queue.TryPushN(
          buckets[i].data() + offset, buckets[i].size() - offset);
      shard.enqueued.fetch_add(pushed, std::memory_order_release);
      offset += pushed;
      if (offset < buckets[i].size()) std::this_thread::yield();
    }
  }
}

void ShardedAggregateEngine::Flush() {
  for (auto& shard : shards_) {
    const uint64_t target = shard->enqueued.load(std::memory_order_acquire);
    while (shard->applied.load(std::memory_order_acquire) < target) {
      std::this_thread::yield();
    }
  }
}

uint64_t ShardedAggregateEngine::ItemsApplied() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->applied.load(std::memory_order_acquire);
  }
  return total;
}

void ShardedAggregateEngine::WriterLoop(Shard& shard) {
  std::vector<KeyedItem> buffer(kDrainChunk);
  while (true) {
    const size_t n = shard.queue.TryPopN(buffer.data(), buffer.size());
    if (n > 0) {
      if (options_.apply_batched) {
        shard.registry->UpdateBatch({buffer.data(), n});
      } else {
        for (size_t i = 0; i < n; ++i) {
          shard.registry->Update(buffer[i].key, buffer[i].t, buffer[i].value);
        }
      }
      shard.applied.fetch_add(n, std::memory_order_release);
    }
    if (shard.snapshot_requested.exchange(false,
                                          std::memory_order_acq_rel)) {
      PublishSnapshot(shard);
    }
    if (n > 0) continue;  // keep draining while the queue is hot
    if (stop_.load(std::memory_order_acquire)) {
      if (shard.queue.EmptyApprox()) break;
      continue;
    }
    std::this_thread::yield();
  }
  // Final publish so a reader whose request raced shutdown never hangs.
  PublishSnapshot(shard);
  {
    std::lock_guard<std::mutex> lock(shard.snapshot_mutex);
    shard.stopped = true;
  }
  shard.snapshot_cv.notify_all();
}

void ShardedAggregateEngine::PublishSnapshot(Shard& shard) {
  uint64_t serving;
  {
    std::lock_guard<std::mutex> lock(shard.snapshot_mutex);
    serving = shard.tickets_issued;
  }
  // Clone via the snapshot codec: everything applied before this point is
  // in the clone, so any ticket issued before `serving` was read is served.
  std::string blob;
  const Status encoded = shard.registry->EncodeState(&blob);
  TDS_CHECK_MSG(encoded.ok(), encoded.message().c_str());
  auto decoded =
      AggregateRegistry::Decode(decay_, options_.registry, blob);
  TDS_CHECK_MSG(decoded.ok(), decoded.status().message().c_str());
  auto clone = std::make_shared<const AggregateRegistry>(
      std::move(decoded).value());
  {
    std::lock_guard<std::mutex> lock(shard.snapshot_mutex);
    shard.snapshot = std::move(clone);
    shard.tickets_served = std::max(shard.tickets_served, serving);
  }
  shard.snapshot_cv.notify_all();
}

std::shared_ptr<const AggregateRegistry> ShardedAggregateEngine::ShardSnapshot(
    uint32_t shard_index) {
  TDS_CHECK_LT(shard_index, shards_.size());
  Shard& shard = *shards_[shard_index];
  uint64_t ticket;
  {
    std::lock_guard<std::mutex> lock(shard.snapshot_mutex);
    ticket = ++shard.tickets_issued;
  }
  shard.snapshot_requested.store(true, std::memory_order_release);
  std::unique_lock<std::mutex> lock(shard.snapshot_mutex);
  shard.snapshot_cv.wait(lock, [&] {
    return shard.tickets_served >= ticket || shard.stopped;
  });
  return shard.snapshot;
}

double ShardedAggregateEngine::QueryKey(uint64_t key, Tick now) {
  const auto snapshot = ShardSnapshot(ShardForKey(key, shards()));
  if (snapshot == nullptr) return 0.0;
  return snapshot->Query(key, std::max(now, snapshot->now()));
}

double ShardedAggregateEngine::QueryTotal(Tick now) {
  double total = 0.0;
  for (uint32_t i = 0; i < shards(); ++i) {
    const auto snapshot = ShardSnapshot(i);
    if (snapshot == nullptr) continue;
    total += snapshot->QueryTotal(std::max(now, snapshot->now()));
  }
  return total;
}

size_t ShardedAggregateEngine::KeyCount() {
  size_t total = 0;
  for (uint32_t i = 0; i < shards(); ++i) {
    const auto snapshot = ShardSnapshot(i);
    if (snapshot != nullptr) total += snapshot->KeyCount();
  }
  return total;
}

}  // namespace tds
