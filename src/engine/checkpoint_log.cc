#include "engine/checkpoint_log.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "core/factory.h"
#include "engine/checkpoint_io.h"
#include "util/check.h"
#include "util/codec.h"
#include "util/failpoint.h"

namespace tds {
namespace {

constexpr char kManifestMagic[] = "TDSMAN1";
constexpr char kSegmentMagic[] = "TDSSEG1";
constexpr char kManifestFile[] = "MANIFEST.tds";

std::string SegmentName(uint64_t generation, uint32_t shard) {
  return "seg-" + std::to_string(generation) + "-s" + std::to_string(shard) +
         ".tds";
}

std::string BaseName(uint64_t gen_lo, uint64_t gen_hi) {
  return "base-" + std::to_string(gen_lo) + "-" + std::to_string(gen_hi) +
         ".tds";
}

/// Durably lands one already-footered segment/base file. Unchanged on
/// error: until a manifest names the file it is invisible garbage, and the
/// injected fault (or a real crash) leaves at most an unreferenced temp.
Status WriteSegmentFile(const std::string& path, std::string_view file_bytes) {
  TDS_FAILPOINT_RETURN("ckptlog.segment.write");
  Status written = ckptio::WriteTmpDurable(path + ".tmp", file_bytes);
  if (!written.ok()) return written;
  if (::rename((path + ".tmp").c_str(), path.c_str()) != 0) {
    const Status renamed = ckptio::IoError("rename", path + ".tmp");
    (void)::unlink((path + ".tmp").c_str());
    return renamed;
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Segment codec
// ---------------------------------------------------------------------------

namespace ckptlog_internal {

Status Segment::Encode(std::string* out) const {
  TDS_CHECK(out != nullptr);
  const Status audit = AuditInvariants();
  if (!audit.ok()) return audit;
  Encoder encoder;
  encoder.PutString(kSegmentMagic);
  encoder.PutVarint(shard);
  encoder.PutVarint(gen_lo);
  encoder.PutVarint(gen_hi);
  encoder.PutVarint(epoch);
  encoder.PutVarint(dead_keys.size());
  for (const uint64_t key : dead_keys) encoder.PutVarint(key);
  encoder.PutString(registry_blob);
  *out = encoder.Finish();
  return Status::OK();
}

StatusOr<Segment> Segment::Decode(std::string_view data) {
  Decoder decoder(data);
  Segment segment;
  std::string magic;
  if (!decoder.GetString(&magic) || magic != kSegmentMagic) {
    return Status::InvalidArgument("corrupt segment: magic");
  }
  uint64_t shard = 0;
  uint64_t dead_count = 0;
  if (!decoder.GetVarint(&shard) || !decoder.GetVarint(&segment.gen_lo) ||
      !decoder.GetVarint(&segment.gen_hi) ||
      !decoder.GetVarint(&segment.epoch) ||
      !decoder.GetVarint(&dead_count)) {
    return Status::InvalidArgument("corrupt segment: header");
  }
  segment.shard = static_cast<uint32_t>(shard);
  segment.dead_keys.reserve(
      std::min<uint64_t>(dead_count, data.size()));
  for (uint64_t i = 0; i < dead_count; ++i) {
    uint64_t key = 0;
    if (!decoder.GetVarint(&key)) {
      return Status::InvalidArgument("corrupt segment: dead key");
    }
    segment.dead_keys.push_back(key);
  }
  if (!decoder.GetString(&segment.registry_blob)) {
    return Status::InvalidArgument("corrupt segment: registry blob");
  }
  if (!decoder.Done()) {
    return Status::InvalidArgument("corrupt segment: trailer");
  }
  const Status audit = segment.AuditInvariants();
  if (!audit.ok()) return audit;
  return segment;
}

Status Segment::AuditInvariants() const {
  if (shard == CheckpointLog::kBaseShard) {
    if (!dead_keys.empty()) {
      return Status::InvalidArgument("base segment carries dead keys");
    }
    if (gen_lo > gen_hi) {
      return Status::InvalidArgument("base segment generation range inverted");
    }
  } else if (gen_lo != gen_hi) {
    return Status::InvalidArgument(
        "incremental segment spans multiple generations");
  }
  for (size_t i = 1; i < dead_keys.size(); ++i) {
    if (dead_keys[i] <= dead_keys[i - 1]) {
      return Status::InvalidArgument(
          "segment dead keys not strictly increasing");
    }
  }
  return Status::OK();
}

Status ApplyGeneration(AggregateRegistry& registry,
                       std::vector<AggregateRegistry> minis,
                       const std::vector<const Segment*>& segments) {
  TDS_CHECK(!minis.empty());
  TDS_CHECK(minis.size() == segments.size());
  // The generation's write set: every updated key (present in a mini) and
  // every key that stayed dead. Updated keys are replaced wholesale —
  // their mini entry is the shard's full state for that key — and dead
  // keys are simply dropped.
  std::vector<uint64_t> superseded;
  for (const auto& mini : minis) {
    mini.ForEachKey([&](uint64_t key, Tick, const DecayedAggregate&) {
      superseded.push_back(key);
    });
  }
  std::sort(superseded.begin(), superseded.end());
  const size_t updated_end = superseded.size();
  for (const Segment* segment : segments) {
    for (const uint64_t key : segment->dead_keys) {
      if (!std::binary_search(superseded.begin(),
                              superseded.begin() + updated_end, key)) {
        superseded.push_back(key);
      }
    }
  }
  std::sort(superseded.begin(), superseded.end());
  superseded.erase(std::unique(superseded.begin(), superseded.end()),
                   superseded.end());
  // Fold the shard minis together first: they are key-disjoint (one route
  // cut) and still local temporaries, so a failure here mutates nothing.
  AggregateRegistry fold = std::move(minis.front());
  for (size_t i = 1; i < minis.size(); ++i) {
    Status merged = fold.MergeFrom(std::move(minis[i]));
    if (!merged.ok()) return merged;
  }
  // Extract everything the generation supersedes, then merge the fold in.
  // On a merge failure the extracted keys go back — the applier's
  // unchanged-on-error contract (same rollback discipline as the engine's
  // migration path).
  auto extracted = registry.ExtractIf([&](uint64_t key) {
    return std::binary_search(superseded.begin(), superseded.end(), key);
  });
  if (!extracted.ok()) return extracted.status();
  AggregateRegistry stale = std::move(extracted).value();
  Status merged = registry.MergeFrom(std::move(fold));
  if (!merged.ok()) {
    failpoint::SuppressionScope no_faults;
    TDS_CHECK_MSG(registry.MergeFrom(std::move(stale)).ok(),
                  "checkpoint apply rollback failed; registry torn");
    return merged;
  }
  return Status::OK();
}

StatusOr<Segment> ReadManifestEntry(
    const std::string& dir, const CheckpointLog::ManifestEntry& entry) {
  StatusOr<std::string> raw = ckptio::ReadWholeFile(dir + "/" + entry.file);
  if (!raw.ok()) return raw.status();
  if (raw->size() != entry.length) {
    return Status::InvalidArgument("segment " + entry.file +
                                   " length differs from the manifest");
  }
  if (ckptio::Fnv1a(*raw) != entry.checksum) {
    return Status::InvalidArgument("segment " + entry.file +
                                   " checksum differs from the manifest");
  }
  StatusOr<std::string_view> payload =
      ckptio::ValidateFooter(*raw, "segment " + entry.file);
  if (!payload.ok()) return payload.status();
  StatusOr<Segment> segment = Segment::Decode(*payload);
  if (!segment.ok()) return segment.status();
  if (segment->shard != entry.shard || segment->gen_lo != entry.gen_lo ||
      segment->gen_hi != entry.gen_hi) {
    return Status::InvalidArgument("segment " + entry.file +
                                   " header differs from the manifest");
  }
  return segment;
}

StatusOr<AggregateRegistry> FoldManifest(
    DecayPtr decay, const AggregateRegistry::Options& options,
    const std::string& dir, const CheckpointLog::Manifest& manifest) {
  auto created = AggregateRegistry::Create(decay, options);
  if (!created.ok()) return created.status();
  AggregateRegistry registry = std::move(created).value();
  if (manifest.decay_name != decay->Name()) {
    return Status::InvalidArgument("manifest decay mismatch: " +
                                   manifest.decay_name);
  }
  size_t i = 0;
  if (i < manifest.entries.size() &&
      manifest.entries[i].shard == CheckpointLog::kBaseShard) {
    StatusOr<Segment> base = ReadManifestEntry(dir, manifest.entries[i]);
    if (!base.ok()) return base.status();
    auto decoded =
        AggregateRegistry::Decode(decay, options, base->registry_blob);
    if (!decoded.ok()) return decoded.status();
    Status merged = registry.MergeFrom(std::move(decoded).value());
    if (!merged.ok()) return merged;
    ++i;
  }
  while (i < manifest.entries.size()) {
    const uint64_t generation = manifest.entries[i].gen_lo;
    std::vector<Segment> segments;
    while (i < manifest.entries.size() &&
           manifest.entries[i].gen_lo == generation) {
      StatusOr<Segment> segment = ReadManifestEntry(dir, manifest.entries[i]);
      if (!segment.ok()) return segment.status();
      segments.push_back(std::move(segment).value());
      ++i;
    }
    std::vector<AggregateRegistry> minis;
    std::vector<const Segment*> views;
    minis.reserve(segments.size());
    views.reserve(segments.size());
    for (const auto& segment : segments) {
      auto mini =
          AggregateRegistry::Decode(decay, options, segment.registry_blob);
      if (!mini.ok()) return mini.status();
      minis.push_back(std::move(mini).value());
      views.push_back(&segment);
    }
    Status applied = ApplyGeneration(registry, std::move(minis), views);
    if (!applied.ok()) return applied;
  }
  return registry;
}

}  // namespace ckptlog_internal

// ---------------------------------------------------------------------------
// Manifest codec
// ---------------------------------------------------------------------------

Status CheckpointLog::Manifest::Encode(std::string* out) const {
  TDS_CHECK(out != nullptr);
  const Status audit = AuditInvariants();
  if (!audit.ok()) return audit;
  Encoder encoder;
  encoder.PutString(kManifestMagic);
  encoder.PutVarint(generation);
  encoder.PutString(decay_name);
  encoder.PutVarint(backend);
  encoder.PutDouble(epsilon);
  encoder.PutSigned(start);
  encoder.PutVarint(shard_epochs.size());
  for (const uint64_t epoch : shard_epochs) encoder.PutVarint(epoch);
  encoder.PutVarint(entries.size());
  for (const ManifestEntry& entry : entries) {
    encoder.PutString(entry.file);
    encoder.PutVarint(entry.shard);
    encoder.PutVarint(entry.gen_lo);
    encoder.PutVarint(entry.gen_hi);
    encoder.PutVarint(entry.length);
    encoder.PutVarint(entry.checksum);
  }
  *out = encoder.Finish();
  return Status::OK();
}

StatusOr<CheckpointLog::Manifest> CheckpointLog::Manifest::Decode(
    std::string_view data) {
  Decoder decoder(data);
  Manifest manifest;
  std::string magic;
  if (!decoder.GetString(&magic) || magic != kManifestMagic) {
    return Status::InvalidArgument("corrupt manifest: magic");
  }
  uint64_t shard_count = 0;
  uint64_t entry_count = 0;
  if (!decoder.GetVarint(&manifest.generation) ||
      !decoder.GetString(&manifest.decay_name) ||
      !decoder.GetVarint(&manifest.backend) ||
      !decoder.GetDouble(&manifest.epsilon) ||
      !decoder.GetSigned(&manifest.start) ||
      !decoder.GetVarint(&shard_count)) {
    return Status::InvalidArgument("corrupt manifest: header");
  }
  for (uint64_t i = 0; i < shard_count; ++i) {
    uint64_t epoch = 0;
    if (!decoder.GetVarint(&epoch)) {
      return Status::InvalidArgument("corrupt manifest: shard epoch");
    }
    manifest.shard_epochs.push_back(epoch);
  }
  if (!decoder.GetVarint(&entry_count)) {
    return Status::InvalidArgument("corrupt manifest: entry count");
  }
  for (uint64_t i = 0; i < entry_count; ++i) {
    ManifestEntry entry;
    uint64_t shard = 0;
    if (!decoder.GetString(&entry.file) || !decoder.GetVarint(&shard) ||
        !decoder.GetVarint(&entry.gen_lo) ||
        !decoder.GetVarint(&entry.gen_hi) ||
        !decoder.GetVarint(&entry.length) ||
        !decoder.GetVarint(&entry.checksum)) {
      return Status::InvalidArgument("corrupt manifest: entry");
    }
    entry.shard = static_cast<uint32_t>(shard);
    manifest.entries.push_back(std::move(entry));
  }
  if (!decoder.Done()) {
    return Status::InvalidArgument("corrupt manifest: trailer");
  }
  const Status audit = manifest.AuditInvariants();
  if (!audit.ok()) return audit;
  return manifest;
}

Status CheckpointLog::Manifest::AuditInvariants() const {
  uint64_t base_gen_hi = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    const ManifestEntry& entry = entries[i];
    if (entry.gen_hi > generation) {
      return Status::InvalidArgument(
          "manifest entry newer than the manifest generation");
    }
    if (entry.shard == kBaseShard) {
      if (i != 0) {
        return Status::InvalidArgument(
            "manifest base entry must be first (and unique)");
      }
      if (entry.gen_lo > entry.gen_hi) {
        return Status::InvalidArgument("manifest base range inverted");
      }
      base_gen_hi = entry.gen_hi;
      continue;
    }
    if (entry.gen_lo != entry.gen_hi) {
      return Status::InvalidArgument(
          "manifest segment spans multiple generations");
    }
    if (entry.gen_lo <= base_gen_hi) {
      return Status::InvalidArgument(
          "manifest segment not newer than the base");
    }
    if (entry.shard >= shard_epochs.size()) {
      return Status::InvalidArgument("manifest segment shard out of range");
    }
    if (i > 0 && entries[i - 1].shard != kBaseShard) {
      const ManifestEntry& prev = entries[i - 1];
      if (std::make_pair(prev.gen_lo, prev.shard) >=
          std::make_pair(entry.gen_lo, entry.shard)) {
        return Status::InvalidArgument(
            "manifest segments not sorted by (generation, shard)");
      }
    }
    for (size_t j = 0; j < i; ++j) {
      if (entries[j].file == entry.file) {
        return Status::InvalidArgument("manifest names a file twice");
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CheckpointLog
// ---------------------------------------------------------------------------

StatusOr<CheckpointLog> CheckpointLog::Create(ShardedAggregateEngine& engine,
                                              std::string dir,
                                              const Options& options) {
  if (!engine.checkpoint_tracking()) {
    return Status::FailedPrecondition(
        "CheckpointLog requires EnableCheckpointTracking on the engine");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return ckptio::IoError("mkdir", dir);
  }
  CheckpointLog log(engine, std::move(dir), options);
  const std::string manifest_path = log.dir_ + "/" + kManifestFile;
  const bool have_manifest =
      ::access(manifest_path.c_str(), F_OK) == 0 ||
      ::access((manifest_path + ".prev").c_str(), F_OK) == 0;
  const Backend backend = ResolveBackend(
      *engine.decay(), engine.options().registry.aggregate.backend());
  if (have_manifest) {
    StatusOr<Manifest> manifest = LoadManifest(log.dir_);
    if (!manifest.ok()) return manifest.status();
    if (manifest->decay_name != engine.decay()->Name() ||
        manifest->backend != static_cast<uint64_t>(backend) ||
        manifest->epsilon != engine.options().registry.aggregate.epsilon() ||
        manifest->start != engine.options().registry.aggregate.start()) {
      return Status::InvalidArgument(
          "checkpoint log config fingerprint does not match the engine");
    }
    if (manifest->shard_epochs.size() != engine.shards()) {
      return Status::InvalidArgument(
          "checkpoint log shard count does not match the engine");
    }
    log.manifest_ = std::move(manifest).value();
  } else {
    log.manifest_.decay_name = engine.decay()->Name();
    log.manifest_.backend = static_cast<uint64_t>(backend);
    log.manifest_.epsilon = engine.options().registry.aggregate.epsilon();
    log.manifest_.start = engine.options().registry.aggregate.start();
  }
  // Watermarks are in-memory epochs, and those restarted with this
  // process: the first capture must be a full snapshot (since == 0) no
  // matter what a previous incarnation had committed.
  log.manifest_.shard_epochs.assign(engine.shards(), 0);
  return log;
}

template <typename Fn>
Status CheckpointLog::WithRetry(Fn&& write) {
  ExponentialBackoff backoff(options_.backoff);
  Status status = write();
  for (uint32_t attempt = 0;
       status.code() == StatusCode::kUnavailable &&
       attempt < options_.io_retries;
       ++attempt) {
    backoff.Wait();
    status = write();
  }
  return status;
}

Status CheckpointLog::CommitManifest(Manifest next) {
  std::string payload;
  Status encoded = next.Encode(&payload);
  if (!encoded.ok()) return encoded;
  std::string file_bytes = std::move(payload);
  ckptio::AppendFooter(&file_bytes);
  const std::string path = dir_ + "/" + kManifestFile;
  Status committed = WithRetry([&]() -> Status {
    Status written = ckptio::WriteTmpDurable(path + ".tmp", file_bytes);
    if (!written.ok()) return written;
    if (TDS_FAILPOINT("ckptlog.manifest.commit")) {
      // Simulated crash between the durable temp manifest and the commit
      // renames: the previous manifest generation stays the newest valid
      // one, exactly as a real crash would leave it.
      return Status::Unavailable("injected fault: ckptlog.manifest.commit");
    }
    if (::rename(path.c_str(), (path + ".prev").c_str()) != 0 &&
        errno != ENOENT) {
      return ckptio::IoError("rename to .prev", path);
    }
    if (::rename((path + ".tmp").c_str(), path.c_str()) != 0) {
      return ckptio::IoError("rename", path + ".tmp");
    }
    ckptio::SyncDir(dir_);
    return Status::OK();
  });
  if (!committed.ok()) return committed;
  manifest_ = std::move(next);
  return Status::OK();
}

Status CheckpointLog::WriteIncremental() {
  Status flushed = engine_->Flush();
  if (!flushed.ok()) return flushed;
  std::vector<uint64_t> since = manifest_.shard_epochs;
  since.resize(engine_->shards(), 0);
  std::vector<ShardedAggregateEngine::ShardCheckpointDelta> deltas;
  Status captured = engine_->CaptureCheckpointDeltas(since, &deltas);
  if (!captured.ok()) return captured;

  const uint64_t generation = manifest_.generation + 1;
  Manifest next = manifest_;
  next.generation = generation;
  std::vector<std::string> written;
  auto unlink_written = [&] {
    for (const std::string& name : written) {
      (void)::unlink((dir_ + "/" + name).c_str());
    }
  };
  for (const auto& shard_delta : deltas) {
    ckptlog_internal::Segment segment;
    segment.shard = shard_delta.shard;
    segment.gen_lo = generation;
    segment.gen_hi = generation;
    segment.epoch = shard_delta.delta.epoch;
    segment.dead_keys = shard_delta.delta.dead_keys;
    segment.registry_blob = shard_delta.delta.blob;
    std::string payload;
    Status encoded = segment.Encode(&payload);
    if (!encoded.ok()) {
      unlink_written();
      return encoded;
    }
    std::string file_bytes = std::move(payload);
    ckptio::AppendFooter(&file_bytes);
    const std::string name = SegmentName(generation, shard_delta.shard);
    Status landed = WithRetry([&] {
      return WriteSegmentFile(dir_ + "/" + name, file_bytes);
    });
    if (!landed.ok()) {
      unlink_written();
      return landed;
    }
    written.push_back(name);
    ManifestEntry entry;
    entry.file = name;
    entry.shard = shard_delta.shard;
    entry.gen_lo = generation;
    entry.gen_hi = generation;
    entry.length = file_bytes.size();
    entry.checksum = ckptio::Fnv1a(file_bytes);
    next.entries.push_back(std::move(entry));
    next.shard_epochs[shard_delta.shard] = shard_delta.delta.epoch;
  }
  Status committed = CommitManifest(std::move(next));
  if (!committed.ok()) {
    // The segments are unreferenced garbage now; a retried WriteIncremental
    // re-captures a superset delta under fresh names.
    unlink_written();
    return committed;
  }
  CollectGarbage();
  if (options_.compact_min_segments > 0 &&
      manifest_.entries.size() > options_.compact_min_segments) {
    // The incremental commit above already landed; a compaction failure
    // only means live bytes stay un-folded until the next opportunity.
    return Compact();
  }
  return Status::OK();
}

Status CheckpointLog::Compact() {
  TDS_FAILPOINT_RETURN("ckptlog.compact");
  if (manifest_.generation == 0 || manifest_.entries.size() <= 1) {
    return Status::OK();  // nothing to fold
  }
  StatusOr<AggregateRegistry> folded = ckptlog_internal::FoldManifest(
      engine_->decay(), engine_->options().registry, dir_, manifest_);
  if (!folded.ok()) return folded.status();
  ckptlog_internal::Segment base;
  base.shard = kBaseShard;
  base.gen_lo = manifest_.entries.front().gen_lo;
  base.gen_hi = manifest_.generation;
  Status encoded = folded->EncodeState(&base.registry_blob);
  if (!encoded.ok()) return encoded;
  std::string payload;
  encoded = base.Encode(&payload);
  if (!encoded.ok()) return encoded;
  std::string file_bytes = std::move(payload);
  ckptio::AppendFooter(&file_bytes);
  const std::string name = BaseName(base.gen_lo, base.gen_hi);
  Status landed = WithRetry([&] {
    return WriteSegmentFile(dir_ + "/" + name, file_bytes);
  });
  if (!landed.ok()) return landed;

  Manifest next = manifest_;
  next.generation = manifest_.generation + 1;
  next.entries.clear();
  ManifestEntry entry;
  entry.file = name;
  entry.shard = kBaseShard;
  entry.gen_lo = base.gen_lo;
  entry.gen_hi = base.gen_hi;
  entry.length = file_bytes.size();
  entry.checksum = ckptio::Fnv1a(file_bytes);
  next.entries.push_back(std::move(entry));
  Status committed = CommitManifest(std::move(next));
  if (!committed.ok()) {
    (void)::unlink((dir_ + "/" + name).c_str());
    return committed;
  }
  CollectGarbage();
  return Status::OK();
}

void CheckpointLog::CollectGarbage() {
  // Live = named by the committed manifest or by the .prev fallback
  // generation (deleting .prev's segments would tear the fallback). Only
  // checkpoint-log artifacts (seg-*/base-*/stale temps) are touched.
  std::vector<std::string> keep;
  for (const ManifestEntry& entry : manifest_.entries) {
    keep.push_back(entry.file);
  }
  StatusOr<std::string> prev_payload = ckptio::ReadValidatedFile(
      dir_ + "/" + kManifestFile + ".prev", "manifest");
  if (prev_payload.ok()) {
    StatusOr<Manifest> prev = Manifest::Decode(*prev_payload);
    if (prev.ok()) {
      for (const ManifestEntry& entry : prev->entries) {
        keep.push_back(entry.file);
      }
    }
  }
  std::sort(keep.begin(), keep.end());
  DIR* handle = ::opendir(dir_.c_str());
  if (handle == nullptr) return;
  std::vector<std::string> doomed;
  while (struct dirent* ent = ::readdir(handle)) {
    const std::string name = ent->d_name;
    const bool artifact = name.rfind("seg-", 0) == 0 ||
                          name.rfind("base-", 0) == 0;
    if (!artifact) continue;
    if (std::binary_search(keep.begin(), keep.end(), name)) continue;
    doomed.push_back(name);
  }
  ::closedir(handle);
  for (const std::string& name : doomed) {
    (void)::unlink((dir_ + "/" + name).c_str());
  }
}

uint64_t CheckpointLog::LiveBytes() const {
  uint64_t total = 0;
  for (const ManifestEntry& entry : manifest_.entries) {
    total += entry.length;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Loaders
// ---------------------------------------------------------------------------

StatusOr<CheckpointLog::Manifest> LoadManifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestFile;
  const auto load_one = [](const std::string& p)
      -> StatusOr<CheckpointLog::Manifest> {
    StatusOr<std::string> payload = ckptio::ReadValidatedFile(p, "manifest");
    if (!payload.ok()) return payload.status();
    return CheckpointLog::Manifest::Decode(*payload);
  };
  StatusOr<CheckpointLog::Manifest> primary = load_one(path);
  if (primary.ok()) return primary;
  StatusOr<CheckpointLog::Manifest> fallback = load_one(path + ".prev");
  if (fallback.ok()) return fallback;
  // Both generations failed: name both failures (the LoadCheckpoint
  // combined-error convention).
  return Status(primary.status().code(),
                primary.status().message() + "; fallback " + path +
                    ".prev: " + fallback.status().message());
}

StatusOr<AggregateRegistry> LoadCheckpointLog(
    DecayPtr decay, const AggregateRegistry::Options& options,
    const std::string& dir) {
  StatusOr<CheckpointLog::Manifest> manifest = LoadManifest(dir);
  if (!manifest.ok()) return manifest.status();
  return ckptlog_internal::FoldManifest(std::move(decay), options, dir,
                                        *manifest);
}

Status RestoreFromCheckpointLog(ShardedAggregateEngine& engine,
                                const std::string& dir) {
  StatusOr<AggregateRegistry> registry = LoadCheckpointLog(
      engine.decay(), engine.options().registry, dir);
  if (!registry.ok()) return registry.status();
  std::vector<AggregateRegistry> shards;
  shards.push_back(std::move(registry).value());
  StatusOr<MergedSnapshot> snapshot =
      MergedSnapshot::FromShards(std::move(shards));
  if (!snapshot.ok()) return snapshot.status();
  return engine.Restore(std::move(snapshot).value());
}

}  // namespace tds
