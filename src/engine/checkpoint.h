#ifndef TDS_ENGINE_CHECKPOINT_H_
#define TDS_ENGINE_CHECKPOINT_H_

#include <string>

#include "engine/engine.h"
#include "engine/merged_snapshot.h"
#include "util/status.h"

namespace tds {

/// Crash-consistent checkpointing of engine state.
///
/// A checkpoint file is a MergedSnapshot codec blob ("TDSMRG1", the same
/// bytes tests byte-compare against serial references) followed by a fixed
/// 24-byte footer: the magic "TDSCKPT1", the payload length, and an FNV-1a
/// checksum of the payload (both little-endian u64). Putting the integrity
/// data *after* the payload means any torn or truncated write — the file
/// cut short, a hole in the middle, flipped bits — fails validation, since
/// a partial file cannot end in a footer that matches its own contents.
///
/// Write protocol (all-or-nothing against crashes at any point):
///   1. write payload + footer to `path + ".tmp"`, fsync the file;
///   2. rotate any existing checkpoint to `path + ".prev"` (rename);
///   3. rename the temp file onto `path` and fsync the directory.
/// A crash before (3) leaves the previous checkpoint reachable (at `path`
/// or `path + ".prev"`); a crash after leaves the new one. LoadCheckpoint
/// validates `path` first and falls back to `path + ".prev"` when the
/// primary is missing or fails validation, so recovery always lands on the
/// newest checkpoint that was completely written.
///
/// Failpoints (see util/failpoint.h): "checkpoint.write" fails the write
/// before any IO; "checkpoint.commit" fails it after the temp file is
/// written but before the renames — simulating a crash mid-protocol.

/// Flushes the engine, takes one engine-wide merged snapshot, and writes
/// it to `path` under the protocol above.
Status WriteCheckpoint(ShardedAggregateEngine& engine,
                       const std::string& path);

/// Writes an already-captured snapshot to `path` under the protocol above.
Status WriteCheckpointSnapshot(MergedSnapshot& snapshot,
                               const std::string& path);

/// Loads and validates the checkpoint at `path` (falling back to
/// `path + ".prev"`), decoding through the registry codec's full
/// audit-on-decode path. `decay`/`options` must match the engine the
/// checkpoint came from.
StatusOr<MergedSnapshot> LoadCheckpoint(
    DecayPtr decay, const AggregateRegistry::Options& options,
    const std::string& path);

/// LoadCheckpoint (with the engine's own decay/options) + engine.Restore.
/// The engine must be fresh (nothing ingested); on any error it should be
/// discarded — see ShardedAggregateEngine::Restore.
Status RestoreFromCheckpoint(ShardedAggregateEngine& engine,
                             const std::string& path);

}  // namespace tds

#endif  // TDS_ENGINE_CHECKPOINT_H_
