#ifndef TDS_ENGINE_SLOT_ARENA_H_
#define TDS_ENGINE_SLOT_ARENA_H_

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/common.h"

namespace tds {

/// Chunked slot arena backing the registry's keyed aggregates: slots live in
/// fixed-size chunks so references stay stable across growth (no vector
/// reallocation moves), indices are dense 32-bit handles for the open-
/// addressing key table, and freed slots are recycled through a free list.
///
/// The arena does not track liveness itself — the owner distinguishes live
/// from freed slots by their content (a freed slot is reset to a
/// default-constructed T).
template <typename T>
class SlotArena {
 public:
  static constexpr uint32_t kNone = 0xffffffffu;

  SlotArena() = default;
  SlotArena(SlotArena&&) = default;
  SlotArena& operator=(SlotArena&&) = default;

  /// Returns the index of a default-constructed slot (recycled if possible).
  uint32_t Allocate() {
    if (!free_.empty()) {
      const uint32_t index = free_.back();
      free_.pop_back();
      return index;
    }
    const uint32_t index = extent_;
    TDS_CHECK_MSG(index != kNone, "slot arena exhausted");
    if ((index >> kChunkShift) >= chunks_.size()) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    ++extent_;
    return index;
  }

  /// Resets the slot to a default-constructed T and recycles its index.
  void Free(uint32_t index) {
    at(index) = T{};
    free_.push_back(index);
  }

  T& at(uint32_t index) {
    TDS_CHECK_LT(index, extent_);
    return chunks_[index >> kChunkShift]->slots[index & kChunkMask];
  }
  const T& at(uint32_t index) const {
    TDS_CHECK_LT(index, extent_);
    return chunks_[index >> kChunkShift]->slots[index & kChunkMask];
  }

  /// Issues a read prefetch for the slot's first cache line. Out-of-range
  /// indices (including kNone) are a no-op, so callers can prefetch a table
  /// entry's slot handle before validating it.
  void Prefetch(uint32_t index) const {
    if (index >= extent_) return;
    TDS_PREFETCH(&chunks_[index >> kChunkShift]->slots[index & kChunkMask]);
  }

  /// Number of slots ever allocated (the sweep cursor's iteration space);
  /// includes currently-freed slots.
  uint32_t extent() const { return extent_; }

  size_t free_count() const { return free_.size(); }

  /// Slots currently handed out (extent minus the free list) — the arena's
  /// occupancy, reported by the engine's per-shard stats and cross-checked
  /// against the owner's live count in audits.
  size_t occupied() const { return extent_ - free_.size(); }

 private:
  static constexpr uint32_t kChunkShift = 12;  // 4096 slots per chunk
  static constexpr uint32_t kChunkMask = (1u << kChunkShift) - 1;
  // Chunks are cache-line aligned so slot 0's hot fields (and every slot
  // whose size divides 64) start on a line boundary — the prefetch in the
  // registry's grouped-batch path pulls a whole useful line, not a straddle.
  struct alignas(64) Chunk {
    std::array<T, 1u << kChunkShift> slots;
  };

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<uint32_t> free_;
  uint32_t extent_ = 0;
};

}  // namespace tds

#endif  // TDS_ENGINE_SLOT_ARENA_H_
