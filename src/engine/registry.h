#ifndef TDS_ENGINE_REGISTRY_H_
#define TDS_ENGINE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/decayed_aggregate.h"
#include "core/factory.h"
#include "engine/slot_arena.h"
#include "util/common.h"
#include "util/status.h"

namespace tds {

class WbmhLayout;

/// One keyed observation for a multi-stream registry or engine.
struct KeyedItem {
  uint64_t key = 0;
  Tick t = 0;
  uint64_t value = 0;
};

/// A registry of per-key decayed aggregates — the paper's deployment shape
/// (Section 6 telecom application): millions of per-customer summaries, one
/// decay function, one accuracy target, maintained together.
///
/// Storage design:
///  * keys live in an open-addressing table (linear probing, tombstoned
///    deletes, power-of-two capacity) mapping to dense 32-bit slot handles;
///  * slots live in a chunked arena (stable addresses, recycled through a
///    free list), each holding the key, its aggregate, and its last
///    arrival tick;
///  * for WBMH backends, all keys share ONE WbmhLayout — the paper's
///    boundary-sharing argument — and the registry owns the op-log trim
///    policy (a counter may only outrun the log if every counter has
///    synced, so trims happen after sync-all passes).
///
/// Idle-key expiry: a key whose newest item has decayed to (essentially)
/// nothing is evicted. The threshold age comes from the decay function
/// itself: Horizon() when finite (evicted state is exactly zero), otherwise
/// the smallest age whose weight falls below `expiry_weight_floor * g(1)`
/// (approximate; disable with a non-positive floor). Expiry runs lazily —
/// a bounded sweep piggybacks on every update, and each full pass over the
/// arena completes one epoch; Advance() runs a full pass eagerly.
///
/// Threading contract (same as DecayedAggregate): Update / UpdateBatch /
/// Advance / EncodeState require exclusive access and non-decreasing ticks;
/// Query / QueryTotal are const and side-effect free, so any number of
/// readers may run concurrently on a quiescent registry.
class AggregateRegistry {
 public:
  struct Options {
    /// Backend / epsilon / start for every per-key aggregate. kAuto is
    /// resolved once at Create.
    AggregateOptions aggregate;
    /// Idle-key expiry floor for infinite-horizon decays (see class
    /// comment); 0 disables expiry there, while finite horizons still
    /// expire at the horizon age. A negative floor disables expiry
    /// entirely — the differential-testing hook (an evicted-then-recreated
    /// key rebuilds its histogram from scratch, which is within the
    /// accuracy bound but not bit-identical to an uninterrupted one).
    double expiry_weight_floor = 1e-9;
    /// Slots examined per applied (tick, key) run by the lazy expiry sweep
    /// (a single Update is one run, so the per-item path sweeps this many
    /// slots per item; a coalesced batch sweeps per distinct run).
    uint32_t sweep_per_update = 2;
    /// Software-prefetch the next runs' table lines and slot guesses in the
    /// grouped batch path. Semantically inert — prefetches only issue cache
    /// hints — so disabling it must be byte-identical (the property test's
    /// prefetch oracle diffs the two settings).
    bool prefetch = true;
  };

  static StatusOr<AggregateRegistry> Create(DecayPtr decay,
                                            const Options& options);

  AggregateRegistry(AggregateRegistry&&) = default;
  AggregateRegistry& operator=(AggregateRegistry&&) = default;

  /// Adds `value` at tick t (>= now()) to `key`, creating it on first use.
  void Update(uint64_t key, Tick t, uint64_t value);

  /// Batch ingest: items must have non-decreasing ticks (starting >= now()).
  /// Internally regrouped tick-major (keeping the shared WBMH clock
  /// monotone), then hash-grouped by key within each tick segment in O(n) —
  /// per-key item order is preserved, and reordering across keys is
  /// invisible because keys are independent structures — so the resulting
  /// per-key state is bit-identical to feeding the same sequence through
  /// Update, while table probes, layout advances, op replays, and histogram
  /// cascades amortize over each (tick, key) run.
  void UpdateBatch(std::span<const KeyedItem> items);

  /// Advances every key's aggregate to `now` and runs a full expiry pass.
  void Advance(Tick now);

  /// Decayed sum of `key` at `now` (>= now()); 0 for absent keys.
  double Query(uint64_t key, Tick now) const;

  /// Sum of all keys' decayed sums at `now` (>= now()).
  double QueryTotal(Tick now) const;

  bool Contains(uint64_t key) const;

  /// Calls f(key, last_tick, const DecayedAggregate&) for every live key,
  /// in arena order (not key order). Const iteration only — mutating the
  /// registry from inside f is undefined.
  template <typename F>
  void ForEachKey(F&& f) const {
    for (uint32_t i = 0; i < arena_.extent(); ++i) {
      const Slot& slot = arena_.at(i);
      if (slot.aggregate != nullptr) f(slot.key, slot.last_tick, *slot.aggregate);
    }
  }

  /// Absorbs every key of `other` (which must use the same decay, backend,
  /// epsilon, and start, and share no keys with this registry). The merged
  /// clock is the max of the two clocks. Existing per-key aggregates are
  /// *not* advanced — a key's state stays the pure function of its own
  /// update sequence, so the merged registry is bit-identical to one that
  /// ingested both substreams serially (the cross-shard snapshot-merge
  /// guarantee). For WBMH, both shared layouts are aligned to the later
  /// layout clock (a stream-independent advance) and the incoming counters
  /// are transplanted onto this registry's layout via the counter codec.
  /// `other` is consumed; on error this registry is unchanged.
  Status MergeFrom(AggregateRegistry&& other);

  /// Moves every live key with pred(key) == true into a new registry with
  /// the same options and clock (the shard-migration donor path). The
  /// extracted aggregates are not advanced, preserving bit-identity; for
  /// WBMH the new registry's layout is advanced to this layout's clock
  /// (deterministically identical structure) and counters transplant via
  /// the counter codec.
  StatusOr<AggregateRegistry> ExtractIf(
      const std::function<bool(uint64_t)>& pred);

  size_t KeyCount() const { return live_; }
  Tick now() const { return now_; }
  Backend backend() const { return backend_; }
  const DecayPtr& decay() const { return decay_; }

  /// Expiry threshold age (kInfiniteHorizon when expiry is disabled).
  Tick expiry_age() const { return expiry_age_; }

  /// Completed full passes of the lazy expiry sweep.
  uint64_t sweep_epoch() const { return epoch_; }

  /// Paper storage metric over all keys; a shared WBMH layout's boundary
  /// storage is charged once (two ticks per bucket).
  size_t StorageBits() const;

  /// Slot-arena footprint: slots ever allocated (extent) and slots live
  /// right now. extent - occupied is recyclable churn — the engine's
  /// rebalance stats report both.
  size_t ArenaExtent() const { return arena_.extent(); }
  size_t ArenaOccupied() const { return arena_.occupied(); }

  /// Structural invariant audit (see util/audit.h): table/arena/count
  /// consistency, probe-chain reachability of every slot, clock bounds,
  /// shared-layout + per-key sub-audits. Non-const only because WBMH
  /// sub-audits may extend the layout's memoized region table.
  Status AuditInvariants();

  /// Snapshot codec (self-inverse: decode then re-encode is
  /// byte-identical). Non-const: WBMH counters sync and the layout log is
  /// trimmed first. Thin wrapper over EncodeStateImpl, which runs the
  /// audit hook after the counter sync.
  Status EncodeState(std::string* out);  // tds-analyze: allow(audit-hook)
  static StatusOr<AggregateRegistry> Decode(DecayPtr decay,
                                            const Options& options,
                                            std::string_view data);

  /// --- Incremental-checkpoint dirty tracking (engine/checkpoint_log.h) ---
  ///
  /// When enabled, every slot mutation stamps the slot with the current
  /// checkpoint epoch and every eviction is appended to a dead-key log, so
  /// CaptureCheckpointDelta can encode exactly the keys that changed since
  /// a given epoch. Off by default: the stamp is one store per mutated
  /// slot, but the dead-key log grows with evictions between captures, so
  /// tracking only runs when someone is actually draining it.
  ///
  /// Epoch discipline: the current epoch is stamped on mutations; a capture
  /// returns the epoch it covered *and then* opens the next one. The caller
  /// advances its own "last committed" watermark only after the capture has
  /// durably landed — re-capturing with the old watermark after a failed
  /// write yields a superset of the lost delta, so nothing is dropped.
  void EnableCheckpointTracking();
  bool checkpoint_tracking() const { return ckpt_tracking_; }

  /// One shard's dirty-set since `since` (a previously returned epoch, or
  /// 0 for everything — the first capture is a full snapshot).
  struct CheckpointDelta {
    /// Epoch this delta covers, i.e. the `since` for the *next* capture
    /// once this one is durably committed.
    uint64_t epoch = 0;
    /// Registry sub-blob ("TDSREG1", AggregateRegistry::Decode-compatible)
    /// restricted to slots dirtied after `since`. Always carries the
    /// registry clock (and the shared WBMH layout), even when no slot
    /// qualifies — appliers need the clock to stay in lockstep.
    std::string blob;
    /// Keys evicted after `since` and not currently live, sorted + unique.
    std::vector<uint64_t> dead_keys;
    /// Number of per-key entries encoded into `blob`.
    size_t dirty_count = 0;
  };

  /// Captures the delta since `since`, prunes dead-key-log entries that
  /// `since` proves committed, and opens the next epoch. Requires
  /// EnableCheckpointTracking; same exclusive-access contract as
  /// EncodeState (the engine runs it on the shard writer thread).
  Status CaptureCheckpointDelta(uint64_t since, CheckpointDelta* out);

 private:
  /// Hot-first field order: the ingest loop touches key (probe-chain
  /// confirmation), then last_tick and the aggregate pointer, in the first
  /// 24 bytes — with the arena's cache-line-aligned chunks, one prefetched
  /// line covers the whole header plus the start of the aggregate object's
  /// pointer chase.
  struct Slot {
    uint64_t key = 0;
    Tick last_tick = 0;
    std::unique_ptr<DecayedAggregate> aggregate;  ///< null == free slot
    /// Checkpoint epoch of the last mutation (0 = never stamped / tracking
    /// off). Cold by design — the ingest hot loop touches it only when
    /// tracking is enabled, and it sits past the hot 24-byte header.
    uint64_t dirty_epoch = 0;
  };

  static constexpr uint32_t kEmptyEntry = 0xffffffffu;
  static constexpr uint32_t kTombEntry = 0xfffffffeu;

  AggregateRegistry(DecayPtr decay, const Options& options, Backend backend,
                    AggregateOptions resolved);

  StatusOr<std::unique_ptr<DecayedAggregate>> NewAggregate() const;
  Tick DeriveExpiryAge() const;

  /// Applies one same-tick segment of a batch, hash-grouped by key; returns
  /// the number of (tick, key) runs applied (the sweep budget unit).
  size_t IngestTickSegment(Tick t, std::span<const KeyedItem> segment);

  uint32_t Find(uint64_t key) const;
  uint32_t GetOrCreate(uint64_t key);

  /// Shared body of EncodeState (partial == false: every live key) and
  /// CaptureCheckpointDelta (partial == true: keys with dirty_epoch >
  /// `since` only). `entry_count` reports how many keys were encoded.
  Status EncodeStateImpl(std::string* out, bool partial, uint64_t since,
                         size_t* entry_count);

  /// GetOrCreate with injectable allocation failure: the failpoint
  /// "registry.arena.grow" fires when `key` is absent and the slot arena
  /// has no freed slot to recycle (the insert would grow the arena). Only
  /// the Decode funnel calls this — the ingest hot path's GetOrCreate
  /// treats allocation failure as fatal by design and must stay free of
  /// per-item failpoint evaluations.
  StatusOr<uint32_t> TryGetOrCreate(uint64_t key);
  void RehashIfNeeded();
  void Rehash(size_t new_capacity);
  void Evict(uint32_t index);
  void SweepStep(size_t budget);
  void MaybeTrimSharedLog();
  void SyncAllCounters();

  DecayPtr decay_;
  Options options_;
  Backend backend_ = Backend::kAuto;
  AggregateOptions resolved_;  ///< aggregate options with backend_ baked in
  std::shared_ptr<WbmhLayout> layout_;  ///< non-null iff backend_ == kWbmh

  std::vector<uint32_t> table_;  ///< slot handles; kEmptyEntry / kTombEntry
  size_t table_mask_ = 0;
  SlotArena<Slot> arena_;
  size_t live_ = 0;
  size_t tombstones_ = 0;

  Tick now_ = 0;
  Tick expiry_age_ = kInfiniteHorizon;
  uint32_t sweep_cursor_ = 0;
  uint64_t epoch_ = 0;

  /// Incremental-checkpoint state (see EnableCheckpointTracking): the open
  /// epoch, the tracking gate, and the (key, eviction epoch) log drained
  /// and pruned by CaptureCheckpointDelta.
  uint64_t ckpt_epoch_ = 1;
  bool ckpt_tracking_ = false;
  std::vector<std::pair<uint64_t, uint64_t>> dead_keys_;

  /// Batch regrouping scratch (IngestTickSegment): an open-addressing map
  /// from key to run id, index chains threading each key's items in
  /// encounter order, and the run directory itself.
  struct Run {
    uint64_t key = 0;
    uint32_t head = 0;
    uint32_t tail = 0;
  };
  std::vector<uint32_t> group_table_;
  std::vector<uint32_t> chain_;
  std::vector<Run> runs_;
  std::vector<StreamItem> run_scratch_;  ///< per-(tick, key) run buffer
};

}  // namespace tds

#endif  // TDS_ENGINE_REGISTRY_H_
