#ifndef TDS_ENGINE_SPSC_RING_H_
#define TDS_ENGINE_SPSC_RING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/atomic.h"
#include "util/check.h"
#include "util/schedule_chaos.h"

namespace tds {

/// Bounded single-producer / single-consumer ring buffer: the per-shard
/// ingest queue of the sharded aggregation engine. Lock-free — the producer
/// touches only `tail_`, the consumer only `head_`, each published with
/// release semantics and observed with acquire semantics, so pushed items
/// happen-before their pop. Capacity is rounded up to a power of two.
///
/// Exactly one producer thread and one consumer thread at a time; the
/// engine serializes multiple front-end producers with a per-shard mutex
/// *around* the push side, which preserves the SPSC contract.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity) {
    size_t rounded = 1;
    while (rounded < capacity) rounded <<= 1;
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }

  /// Starts both cursors at `start_cursor` instead of 0. The cursors are
  /// free-running uint64 counters (only their difference and low bits are
  /// meaningful), so any start is valid; tests seed near 2^32 and 2^64 to
  /// exercise cursor wraparound without billions of pushes.
  SpscRing(size_t capacity, uint64_t start_cursor) : SpscRing(capacity) {
    head_.store(start_cursor, std::memory_order_relaxed);
    tail_.store(start_cursor, std::memory_order_relaxed);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return slots_.size(); }

  /// Producer side: copies up to `n` items in; returns how many fit.
  size_t TryPushN(const T* items, size_t n) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    // Chaos point: stretch the claim-to-publish window so a concurrent
    // consumer advances head_ between our snapshot and our store.
    TDS_INTERLEAVE_POINT("ring.push.claim");
    const size_t free = slots_.size() - static_cast<size_t>(tail - head);
    const size_t count = n < free ? n : free;
    for (size_t i = 0; i < count; ++i) {
      slots_[static_cast<size_t>(tail + i) & mask_] = items[i];
    }
    TDS_INTERLEAVE_POINT("ring.push.publish");
    tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  bool TryPush(const T& item) { return TryPushN(&item, 1) == 1; }

  /// Consumer side: copies up to `max` items out; returns how many.
  size_t TryPopN(T* out, size_t max) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    TDS_INTERLEAVE_POINT("ring.pop.claim");
    const size_t available = static_cast<size_t>(tail - head);
    const size_t count = max < available ? max : available;
    for (size_t i = 0; i < count; ++i) {
      out[i] = slots_[static_cast<size_t>(head + i) & mask_];
    }
    TDS_INTERLEAVE_POINT("ring.pop.publish");
    head_.store(head + count, std::memory_order_release);
    return count;
  }

  /// Approximate occupancy (exact only from the owning side).
  size_t SizeApprox() const {
    return static_cast<size_t>(tail_.load(std::memory_order_acquire) -
                               head_.load(std::memory_order_acquire));
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  /// Producer and consumer cursors on separate cache lines: the producer
  /// writes tail_ and reads head_, the consumer the reverse; padding keeps
  /// the two hot stores from false-sharing one line. Memory orders on both
  /// cursors are the release/acquire minimum, proven by the SpscRing
  /// model-check suite (tests/modelcheck_suites_test.cc).
  alignas(64) Atomic<uint64_t> head_{0};
  alignas(64) Atomic<uint64_t> tail_{0};
};

}  // namespace tds

#endif  // TDS_ENGINE_SPSC_RING_H_
