#ifndef TDS_ENGINE_STANDBY_H_
#define TDS_ENGINE_STANDBY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "engine/checkpoint_log.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "util/status.h"

namespace tds {

/// Warm-standby follower over a CheckpointLog directory: tails the
/// manifest, applies newly committed generations through the same
/// audit-on-decode funnel the loaders use, and can be promoted to a live
/// engine whose registry state is byte-identical to the primary's last
/// committed checkpoint.
///
/// The follower holds one folded registry plus the generation it has
/// applied through. ApplyNew() is cheap when little has been committed:
/// catch-up work is proportional to the segments written since the last
/// apply, not to the key population — unless a compaction rewrote history
/// underneath us (the new base covers generations we already applied), in
/// which case the follower rebuilds from the base. Either way a failed or
/// injected-fault apply leaves the follower serving its last consistent
/// view ("standby.apply" honors unchanged-on-error).
///
/// Reads (Query/QueryTotal/KeyCount) serve the follower's current view at
/// any time; they never block on the primary.
class StandbyFollower {
 public:
  /// Opens a follower for the log at `dir`. `decay`/`options` must match
  /// the primary engine's (the manifest fingerprint is checked on every
  /// apply). The directory may be empty — the follower starts at
  /// generation 0 and picks up the first committed manifest.
  static StatusOr<StandbyFollower> Create(
      DecayPtr decay, const AggregateRegistry::Options& options,
      std::string dir);

  StandbyFollower(StandbyFollower&&) = default;
  StandbyFollower& operator=(StandbyFollower&&) = default;

  /// Tails the manifest and applies every generation committed since the
  /// last successful apply. No committed manifest yet (fresh directory) is
  /// not an error — the follower just stays at generation 0. On any error
  /// the follower's view is unchanged.
  Status ApplyNew();

  /// Final ApplyNew, then moves the follower's registry into a fresh live
  /// engine (Create + Restore). The follower is consumed: further use
  /// fails with kFailedPrecondition.
  StatusOr<std::unique_ptr<ShardedAggregateEngine>> Promote(
      const ShardedAggregateEngine::Options& options);

  /// Structural audit of the follower's view (delegates to the registry's
  /// own audit plus follower-local invariants).
  Status AuditInvariants();

  /// Reads against the follower's current view. `now` below the view's
  /// clock is served at the clock (decayed aggregates never rewind).
  double Query(uint64_t key, Tick now) const;
  double QueryTotal(Tick now) const;
  size_t KeyCount() const { return registry_.KeyCount(); }

  /// Manifest generation the follower has applied through.
  uint64_t applied_generation() const { return applied_generation_; }

 private:
  StandbyFollower(DecayPtr decay, AggregateRegistry::Options options,
                  std::string dir, AggregateRegistry registry)
      : decay_(std::move(decay)),
        options_(options),
        dir_(std::move(dir)),
        registry_(std::move(registry)) {}

  DecayPtr decay_;
  AggregateRegistry::Options options_;
  std::string dir_;
  AggregateRegistry registry_;
  uint64_t applied_generation_ = 0;
  bool promoted_ = false;
};

}  // namespace tds

#endif  // TDS_ENGINE_STANDBY_H_
