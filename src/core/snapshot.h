#ifndef TDS_CORE_SNAPSHOT_H_
#define TDS_CORE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/decayed_aggregate.h"
#include "util/common.h"
#include "util/status.h"

namespace tds {

/// Snapshot (serialization) support for decayed-sum structures: persist a
/// summary and restore it later to continue the stream — the deployment
/// shape of the paper's telecom application, where millions of per-customer
/// summaries outlive any single process.
///
/// The encoding embeds a format magic, the structure type, and the decay
/// function's name; decoding re-binds the state to a caller-supplied decay
/// function (weights are code, not data) and verifies the name matches.
/// Supported types: EXACT, EWMA, RECENT_ITEMS, POLYEXP_PIPE, CEH,
/// COARSE_CEH, and WBMH (with an owned layout).
///
/// Shared-layout WBMH deployments snapshot the layout once and each counter
/// separately via their own EncodeState methods (see WbmhLayout and
/// WbmhCounter); this API covers the self-contained structures.

/// Serializes `aggregate` into `out`.
Status EncodeDecayedSum(DecayedAggregate& aggregate, std::string* out);

/// Reconstructs a structure from `data`, bound to `decay` (which must be
/// the same decay function — verified by name — the snapshot was taken
/// with). `layout` selects the in-memory bucket storage for EH-family
/// structures (CEH, CoarseCEH); snapshots do not encode the layout because
/// both layouts produce byte-identical payloads.
StatusOr<std::unique_ptr<DecayedAggregate>> DecodeDecayedSum(
    DecayPtr decay, std::string_view data,
    HistogramLayout layout = HistogramLayout::kFlat);

/// Snapshots a decayed L_p norm sketch (all row structures; the projection
/// matrix is regenerated from the encoded seed).
Status EncodeDecayedLpNorm(const class DecayedLpNorm& sketch,
                           std::string* out);
StatusOr<class DecayedLpNorm> DecodeDecayedLpNorm(DecayPtr decay,
                                                  std::string_view data);

/// Snapshots a decayed average (both component structures).
Status EncodeDecayedAverage(class DecayedAverage& average, std::string* out);
StatusOr<class DecayedAverage> DecodeDecayedAverage(DecayPtr decay,
                                                    std::string_view data);

/// Audit for the snapshot codec (see util/audit.h): encodes `aggregate`,
/// decodes onto a fresh instance bound to the same decay function, and
/// re-encodes, requiring byte-identical output and a matching structure
/// type — the self-inverse property stream resumption relies on. May sync
/// internal state (WBMH trims its op log), never logical state.
Status AuditSnapshotRoundTrip(DecayedAggregate& aggregate);

}  // namespace tds

#endif  // TDS_CORE_SNAPSHOT_H_
