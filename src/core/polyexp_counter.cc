#include "core/polyexp_counter.h"

#include <cmath>

#include "util/audit.h"
#include "util/check.h"
#include "util/codec.h"

namespace tds {

PolyExpCounter::PolyExpCounter(DecayPtr decay, int k, double lambda,
                               std::vector<double> query_coeffs)
    : decay_(std::move(decay)),
      k_(k),
      lambda_(lambda),
      query_coeffs_(std::move(query_coeffs)) {
  binomial_.resize(k + 1);
  for (int j = 0; j <= k; ++j) {
    binomial_[j].resize(j + 1);
    binomial_[j][0] = binomial_[j][j] = 1.0;
    for (int r = 1; r < j; ++r) {
      binomial_[j][r] = binomial_[j - 1][r - 1] + binomial_[j - 1][r];
    }
  }
  registers_.assign(k + 1, 0.0);
}

StatusOr<std::unique_ptr<PolyExpCounter>> PolyExpCounter::Create(
    DecayPtr decay) {
  if (const auto* pe =
          dynamic_cast<const PolyExponentialDecay*>(decay.get())) {
    // Monomial x^k e^{-lambda x} / k!: the query polynomial is x^k / k!.
    std::vector<double> coeffs(pe->k() + 1, 0.0);
    double factorial = 1.0;
    for (int i = 2; i <= pe->k(); ++i) factorial *= i;
    coeffs.back() = 1.0 / factorial;
    return std::unique_ptr<PolyExpCounter>(
        new PolyExpCounter(decay, pe->k(), pe->lambda(), std::move(coeffs)));
  }
  if (const auto* gp =
          dynamic_cast<const GeneralPolyExpDecay*>(decay.get())) {
    return std::unique_ptr<PolyExpCounter>(new PolyExpCounter(
        decay, gp->degree(), gp->lambda(), gp->coefficients()));
  }
  return Status::InvalidArgument(
      "PolyExpCounter requires PolyExponentialDecay or GeneralPolyExpDecay");
}

StatusOr<std::unique_ptr<PolyExpCounter>> PolyExpCounter::Create(
    int k, double lambda) {
  auto decay = PolyExponentialDecay::Create(k, lambda);
  if (!decay.ok()) return decay.status();
  return Create(decay.value());
}

std::vector<double> PolyExpCounter::RegistersAt(Tick t) const {
  TDS_CHECK_GE(t, now_);
  if (t == now_) return registers_;
  const double gap = static_cast<double>(t - now_);
  const double scale = std::exp(-lambda_ * gap);
  std::vector<double> next(k_ + 1, 0.0);
  for (int j = k_; j >= 0; --j) {
    double sum = 0.0;
    double gap_power = 1.0;  // gap^{j-r} for r = j down to 0
    for (int r = j; r >= 0; --r) {
      sum += binomial_[j][r] * gap_power * registers_[r];
      gap_power *= gap;
    }
    next[j] = scale * sum;
  }
  return next;
}

void PolyExpCounter::AdvanceTo(Tick t) {
  if (t == now_) return;  // skip RegistersAt's vector copy on the hot path
  registers_ = RegistersAt(t);
  now_ = t;
}

void PolyExpCounter::Update(Tick t, uint64_t value) {
  AdvanceTo(t);
  // A new item has age offset 0: only the j = 0 moment changes.
  registers_[0] += static_cast<double>(value);
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void PolyExpCounter::UpdateBatch(std::span<const StreamItem> items) {
  // Fused same-tick path: one O(k^2) binomial gap jump per distinct tick;
  // within a tick every item is a bare M_0 add. The adds stay per-item and
  // in order, so the result is bit-identical to per-item ingestion.
  size_t i = 0;
  while (i < items.size()) {
    const Tick t = items[i].t;
    AdvanceTo(t);
    for (; i < items.size() && items[i].t == t; ++i) {
      registers_[0] += static_cast<double>(items[i].value);
    }
  }
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void PolyExpCounter::Advance(Tick now) {
  AdvanceTo(now);
  TDS_AUDIT_MUTATION(AuditInvariants());
}

Status PolyExpCounter::AuditInvariants() const {
  TDS_AUDIT_CHECK(registers_.size() == static_cast<size_t>(k_) + 1,
                  "register count must be k+1");
  for (double reg : registers_) {
    TDS_AUDIT_CHECK(std::isfinite(reg) && reg >= 0.0,
                    "moment register must be finite and nonnegative");
  }
  TDS_AUDIT_CHECK(query_coeffs_.size() <= static_cast<size_t>(k_) + 1,
                  "query polynomial degree exceeds k");
  TDS_AUDIT_CHECK(binomial_.size() == static_cast<size_t>(k_) + 1,
                  "Pascal triangle must have k+1 rows");
  for (int j = 0; j <= k_; ++j) {
    TDS_AUDIT_CHECK(binomial_[j].size() == static_cast<size_t>(j) + 1,
                    "Pascal row length mismatch");
    TDS_AUDIT_CHECK(binomial_[j][0] == 1.0 && binomial_[j][j] == 1.0,
                    "Pascal row edges must be 1");
    for (int r = 1; r < j; ++r) {
      TDS_AUDIT_CHECK(
          binomial_[j][r] == binomial_[j - 1][r - 1] + binomial_[j - 1][r],
          "Pascal triangle recurrence violated");
    }
  }
  return Status::OK();
}

double PolyExpCounter::Query(Tick now) const {
  return QueryPolynomial(query_coeffs_, now);
}

double PolyExpCounter::QueryPolynomial(const std::vector<double>& coeffs,
                                       Tick now) const {
  TDS_CHECK_LE(coeffs.size(), static_cast<size_t>(k_ + 1));
  const std::vector<double> registers = RegistersAt(now);
  double total = 0.0;
  for (size_t j = 0; j < coeffs.size(); ++j) {
    if (coeffs[j] == 0.0) continue;
    double moment_shifted = 0.0;  // sum_i f_i (age_i+1)^j e^{-lambda age_i}
    for (size_t r = 0; r <= j; ++r) {
      moment_shifted += binomial_[j][r] * registers[r];
    }
    total += coeffs[j] * moment_shifted;
  }
  return std::exp(-lambda_) * total;
}

void PolyExpCounter::EncodeState(Encoder& encoder) const {
  encoder.PutVarint(static_cast<uint64_t>(k_));
  encoder.PutSigned(now_);
  for (double reg : registers_) encoder.PutDouble(reg);
}

Status PolyExpCounter::DecodeState(Decoder& decoder) {
  uint64_t k = 0;
  if (!decoder.GetVarint(&k) || !decoder.GetSigned(&now_)) {
    return CorruptSnapshot("PolyExp header");
  }
  if (static_cast<int>(k) != k_) {
    return Status::InvalidArgument("snapshot options mismatch");
  }
  for (double& reg : registers_) {
    if (!decoder.GetDouble(&reg)) return CorruptSnapshot("PolyExp register");
  }
  // Hostile-snapshot funnel: reject blobs whose state fails the audit.
  const Status audit = AuditInvariants();
  if (!audit.ok()) {
    return Status::InvalidArgument("corrupt snapshot: " + audit.message());
  }
  return Status::OK();
}

size_t PolyExpCounter::StorageBits() const {
  // k+1 floating registers: 53-bit significands plus exponents sized like
  // the EWMA register (each register is an exponentially decayed quantity).
  const double binades =
      lambda_ * std::max<double>(1.0, static_cast<double>(now_)) / M_LN2 + 64.0;
  const double per_register = 53.0 + std::ceil(std::log2(binades));
  return static_cast<size_t>(static_cast<double>(k_ + 1) * per_register);
}

}  // namespace tds
