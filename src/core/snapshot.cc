#include "core/snapshot.h"

#include "core/ceh.h"
#include "core/decayed_average.h"
#include "core/coarse_ceh.h"
#include "core/ewma.h"
#include "core/exact.h"
#include "core/polyexp_counter.h"
#include "core/recent_items.h"
#include "core/wbmh.h"
#include "sketch/decayed_lp_norm.h"
#include "util/audit.h"
#include "util/codec.h"

namespace tds {

namespace {

constexpr std::string_view kMagic = "TDS1";

template <typename T>
Status EncodePayload(T& structure, Encoder& encoder) {
  structure.EncodeState(encoder);
  return Status::OK();
}

// WBMH's EncodeState is itself fallible.
Status EncodePayload(WbmhDecayedSum& structure, Encoder& encoder) {
  return structure.EncodeState(encoder);
}

}  // namespace

Status EncodeDecayedSum(DecayedAggregate& aggregate, std::string* out) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  Encoder payload_encoder;
  const std::string name = aggregate.Name();
  Status status;
  if (auto* p = dynamic_cast<ExactDecayedSum*>(&aggregate)) {
    status = EncodePayload(*p, payload_encoder);
  } else if (auto* p = dynamic_cast<EwmaCounter*>(&aggregate)) {
    status = EncodePayload(*p, payload_encoder);
  } else if (auto* p = dynamic_cast<RecentItemsExpCounter*>(&aggregate)) {
    status = EncodePayload(*p, payload_encoder);
  } else if (auto* p = dynamic_cast<PolyExpCounter*>(&aggregate)) {
    status = EncodePayload(*p, payload_encoder);
  } else if (auto* p = dynamic_cast<CehDecayedSum*>(&aggregate)) {
    status = EncodePayload(*p, payload_encoder);
  } else if (auto* p = dynamic_cast<CoarseCehDecayedSum*>(&aggregate)) {
    status = EncodePayload(*p, payload_encoder);
  } else if (auto* p = dynamic_cast<WbmhDecayedSum*>(&aggregate)) {
    status = EncodePayload(*p, payload_encoder);
  } else {
    return Status::Unimplemented("no snapshot support for " + name);
  }
  if (!status.ok()) return status;

  Encoder encoder;
  encoder.PutString(kMagic);
  encoder.PutString(name);
  encoder.PutString(aggregate.decay()->Name());
  std::string payload = payload_encoder.Finish();
  encoder.PutString(payload);
  *out = encoder.Finish();
  return Status::OK();
}

StatusOr<std::unique_ptr<DecayedAggregate>> DecodeDecayedSum(
    DecayPtr decay, std::string_view data, HistogramLayout layout) {
  if (decay == nullptr) {
    return Status::InvalidArgument("decay function required");
  }
  Decoder decoder(data);
  std::string magic, type, decay_name, payload;
  if (!decoder.GetString(&magic) || magic != kMagic) {
    return CorruptSnapshot("bad magic");
  }
  if (!decoder.GetString(&type) || !decoder.GetString(&decay_name) ||
      !decoder.GetString(&payload)) {
    return CorruptSnapshot("bad envelope");
  }
  if (decay_name != decay->Name()) {
    return Status::InvalidArgument(
        "snapshot was taken under decay '" + decay_name +
        "' but decoding with '" + decay->Name() + "'");
  }

  // Peek the option fields (each payload leads with them) to construct an
  // identically-configured instance, then let DecodeState verify + load.
  Decoder peek(payload);
  Decoder body(payload);
  std::unique_ptr<DecayedAggregate> result;
  Status status;

  if (type == "EXACT") {
    auto created = ExactDecayedSum::Create(std::move(decay));
    if (!created.ok()) return created.status();
    status = (*created)->DecodeState(body);
    result = std::move(created).value();
  } else if (type == "EWMA") {
    uint64_t mantissa = 0;
    if (!peek.GetVarint(&mantissa)) return CorruptSnapshot("EWMA options");
    EwmaCounter::Options options;
    options.mantissa_bits = static_cast<int>(mantissa);
    auto created = EwmaCounter::Create(std::move(decay), options);
    if (!created.ok()) return created.status();
    status = (*created)->DecodeState(body);
    result = std::move(created).value();
  } else if (type == "RECENT_ITEMS") {
    auto created = RecentItemsExpCounter::Create(std::move(decay), {});
    if (!created.ok()) return created.status();
    status = (*created)->DecodeState(body);
    result = std::move(created).value();
  } else if (type == "POLYEXP_PIPE") {
    auto created = PolyExpCounter::Create(std::move(decay));
    if (!created.ok()) return created.status();
    status = (*created)->DecodeState(body);
    result = std::move(created).value();
  } else if (type == "CEH") {
    double epsilon = 0.0;
    if (!peek.GetDouble(&epsilon)) return CorruptSnapshot("CEH options");
    CehDecayedSum::Options options;
    options.epsilon = epsilon;
    options.layout = layout;
    auto created = CehDecayedSum::Create(std::move(decay), options);
    if (!created.ok()) return created.status();
    status = (*created)->DecodeState(body);
    result = std::move(created).value();
  } else if (type == "COARSE_CEH") {
    CoarseCehDecayedSum::Options options;
    if (!peek.GetDouble(&options.epsilon) ||
        !peek.GetDouble(&options.boundary_delta)) {
      return CorruptSnapshot("CoarseCEH options");
    }
    options.layout = layout;
    auto created = CoarseCehDecayedSum::Create(std::move(decay), options);
    if (!created.ok()) return created.status();
    status = (*created)->DecodeState(body);
    result = std::move(created).value();
  } else if (type == "WBMH") {
    WbmhDecayedSum::Options options;
    int64_t start = 0;
    if (!peek.GetDouble(&options.epsilon) || !peek.GetSigned(&start)) {
      return CorruptSnapshot("WBMH options");
    }
    options.start = start;
    // The counter payload carries its own count_epsilon; it sits after the
    // variable-length layout payload, so construct permissively and let
    // DecodeState adopt it.
    options.count_epsilon = options.epsilon;
    auto created = WbmhDecayedSum::Create(std::move(decay), options);
    if (!created.ok()) return created.status();
    status = (*created)->DecodeState(body);
    result = std::move(created).value();
  } else {
    return Status::Unimplemented("unknown snapshot type: " + type);
  }
  if (!status.ok()) return status;
  return result;
}

Status EncodeDecayedLpNorm(const DecayedLpNorm& sketch, std::string* out) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  Encoder encoder;
  encoder.PutString("TDSLP1");
  encoder.PutString(sketch.decay()->Name());
  Encoder payload;
  sketch.EncodeState(payload);
  std::string payload_bytes = payload.Finish();
  encoder.PutString(payload_bytes);
  *out = encoder.Finish();
  return Status::OK();
}

StatusOr<DecayedLpNorm> DecodeDecayedLpNorm(DecayPtr decay,
                                            std::string_view data) {
  if (decay == nullptr) {
    return Status::InvalidArgument("decay function required");
  }
  Decoder decoder(data);
  std::string magic, decay_name, payload;
  if (!decoder.GetString(&magic) || magic != "TDSLP1" ||
      !decoder.GetString(&decay_name) || !decoder.GetString(&payload)) {
    return CorruptSnapshot("bad Lp envelope");
  }
  if (decay_name != decay->Name()) {
    return Status::InvalidArgument("snapshot decay mismatch");
  }
  Decoder peek(payload);
  DecayedLpNorm::Options options;
  uint64_t rows = 0, seed = 0;
  if (!peek.GetDouble(&options.p) || !peek.GetVarint(&rows) ||
      !peek.GetDouble(&options.epsilon) ||
      !peek.GetDouble(&options.quantization) || !peek.GetVarint(&seed)) {
    return CorruptSnapshot("Lp options");
  }
  options.rows = static_cast<int>(rows);
  options.seed = seed;
  auto sketch = DecayedLpNorm::Create(std::move(decay), options);
  if (!sketch.ok()) return sketch.status();
  Decoder body(payload);
  Status status = sketch->DecodeState(body);
  if (!status.ok()) return status;
  return sketch;
}

Status EncodeDecayedAverage(DecayedAverage& average, std::string* out) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  std::string sum_blob, count_blob;
  Status status = EncodeDecayedSum(average.sum_component(), &sum_blob);
  if (!status.ok()) return status;
  status = EncodeDecayedSum(average.count_component(), &count_blob);
  if (!status.ok()) return status;
  Encoder encoder;
  encoder.PutString("TDSAVG1");
  encoder.PutString(sum_blob);
  encoder.PutString(count_blob);
  *out = encoder.Finish();
  return Status::OK();
}

StatusOr<DecayedAverage> DecodeDecayedAverage(DecayPtr decay,
                                              std::string_view data) {
  Decoder decoder(data);
  std::string magic, sum_blob, count_blob;
  if (!decoder.GetString(&magic) || magic != "TDSAVG1" ||
      !decoder.GetString(&sum_blob) || !decoder.GetString(&count_blob)) {
    return CorruptSnapshot("bad average envelope");
  }
  auto sum = DecodeDecayedSum(decay, sum_blob);
  if (!sum.ok()) return sum.status();
  auto count = DecodeDecayedSum(decay, count_blob);
  if (!count.ok()) return count.status();
  return DecayedAverage::Create(std::move(sum).value(),
                                std::move(count).value());
}

Status AuditSnapshotRoundTrip(DecayedAggregate& aggregate) {
  std::string first;
  Status status = EncodeDecayedSum(aggregate, &first);
  if (!status.ok()) return status;
  auto restored = DecodeDecayedSum(aggregate.decay(), first);
  TDS_AUDIT_CHECK(restored.ok(), "decode of a fresh snapshot failed: " +
                                     restored.status().ToString());
  TDS_AUDIT_CHECK((*restored)->Name() == aggregate.Name(),
                  "restored structure type mismatch");
  std::string second;
  status = EncodeDecayedSum(**restored, &second);
  if (!status.ok()) return status;
  TDS_AUDIT_CHECK(first == second,
                  "snapshot round-trip is not byte-identical");
  return Status::OK();
}

}  // namespace tds
