#ifndef TDS_CORE_WBMH_H_
#define TDS_CORE_WBMH_H_

#include <memory>
#include <string>

#include "core/decayed_aggregate.h"
#include "histogram/wbmh_counter.h"
#include "histogram/wbmh_layout.h"
#include "util/status.h"

namespace tds {

/// Weight-Based Merging Histogram decayed sum (paper Section 5, Lemma 5.1):
/// combines the stream-independent boundary process (WbmhLayout) with a
/// per-stream approximate counter (WbmhCounter). Applicable when
/// g(x)/g(x+1) is non-increasing — exponential, polynomial, and smoother
/// decays. For POLYD it uses O(eps^{-1} log N) buckets of
/// O(log(1/eps) + log log N) bits each: O(log N log log N) total, beating
/// the CEH's O(log^2 N).
///
/// The layout may be shared across many streams (see WbmhLayout); this
/// wrapper owns a private layout for the common single-stream case.
class WbmhDecayedSum : public DecayedAggregate {
 public:
  struct Options {
    /// Bucketing precision: weights within one bucket agree within 1+eps.
    double epsilon = 0.5;
    /// Count-rounding precision; <= 0 stores exact counts (ablation mode).
    /// Defaults to tying it to `epsilon`.
    double count_epsilon = -1.0;
    /// First tick of the stream's life.
    Tick start = 1;
    /// Refuse decay functions failing the g(x)/g(x+1) monotone-ratio test.
    bool require_admissible = true;
  };

  static StatusOr<std::unique_ptr<WbmhDecayedSum>> Create(
      DecayPtr decay, const Options& options);

  /// Builds a counter over an existing shared layout.
  static StatusOr<std::unique_ptr<WbmhDecayedSum>> CreateShared(
      std::shared_ptr<WbmhLayout> layout, const Options& options);

  void Update(Tick t, uint64_t value) override;
  /// Amortized batch path: layout advance / op replay / bucket lookup run
  /// once per distinct tick; counts still add per item so the rounded
  /// registers stay bit-identical to the per-item sequence.
  void UpdateBatch(std::span<const StreamItem> items) override;
  void Advance(Tick now) override;
  /// Const and side-effect free: evaluates over the layout as frozen by the
  /// last mutation, with true ages relative to `now` (see
  /// WbmhCounter::Estimate). Advance(now) first to roll merges/drops.
  double Query(Tick now) const override;
  size_t StorageBits() const override;
  std::string Name() const override { return "WBMH"; }
  const DecayPtr& decay() const override { return decay_; }

  const WbmhLayout& layout() const { return *layout_; }
  const WbmhCounter& counter() const { return counter_; }

  /// True when this instance owns its layout (its storage is then charged
  /// in StorageBits; shared layouts are charged once, externally).
  bool owns_layout() const { return owns_layout_; }

  /// Snapshot support (owned layouts only: the layout state is embedded).
  Status EncodeState(class Encoder& encoder);
  Status DecodeState(class Decoder& decoder);

  /// Shared-layout registry support. SyncShared replays pending layout ops
  /// without adding data, so the layout owner can TrimLog across all
  /// counters. Encode/DecodeCounterState snapshot only the per-stream
  /// counter — the owner encodes the shared layout once, separately, and
  /// must decode it before any counter (the counter snapshot binds to the
  /// layout's op sequence).
  void SyncShared() { counter_.Sync(); }
  Status EncodeCounterState(class Encoder& encoder);
  Status DecodeCounterState(class Decoder& decoder);

  /// Audits the layout then the counter (see util/audit.h).
  Status AuditInvariants();

 private:
  WbmhDecayedSum(std::shared_ptr<WbmhLayout> layout, const Options& options,
                 bool owns_layout);

  DecayPtr decay_;
  std::shared_ptr<WbmhLayout> layout_;
  WbmhCounter counter_;
  bool owns_layout_;
};

}  // namespace tds

#endif  // TDS_CORE_WBMH_H_
