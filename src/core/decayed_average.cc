#include "core/decayed_average.h"

#include "util/check.h"

namespace tds {

StatusOr<DecayedAverage> DecayedAverage::Create(
    std::unique_ptr<DecayedAggregate> sum,
    std::unique_ptr<DecayedAggregate> count) {
  if (sum == nullptr || count == nullptr) {
    return Status::InvalidArgument("both components required");
  }
  if (sum->decay()->Name() != count->decay()->Name()) {
    return Status::InvalidArgument(
        "sum and count must use the same decay function");
  }
  return DecayedAverage(std::move(sum), std::move(count));
}

void DecayedAverage::Observe(Tick t, uint64_t value) {
  sum_->Update(t, value);
  count_->Update(t, 1);
}

double DecayedAverage::Query(Tick now, double fallback) const {
  const double denominator = count_->Query(now);
  if (denominator <= 0.0) return fallback;
  return sum_->Query(now) / denominator;
}

}  // namespace tds
