#include "core/factory.h"

#include <cmath>

#include "core/ceh.h"
#include "core/coarse_ceh.h"
#include "core/ewma.h"
#include "core/exact.h"
#include "core/polyexp_counter.h"
#include "core/recent_items.h"
#include "core/wbmh.h"
#include "decay/exponential.h"
#include "decay/polyexponential.h"
#include "decay/sliding_window.h"

namespace tds {

namespace {

Backend ResolveAuto(const DecayFunction& decay) {
  if (dynamic_cast<const ExponentialDecay*>(&decay) != nullptr) {
    return Backend::kEwma;
  }
  if (dynamic_cast<const PolyExponentialDecay*>(&decay) != nullptr ||
      dynamic_cast<const GeneralPolyExpDecay*>(&decay) != nullptr) {
    return Backend::kPolyExp;
  }
  if (dynamic_cast<const SlidingWindowDecay*>(&decay) != nullptr) {
    return Backend::kCeh;  // CEH over SLIWIN reduces to the plain EH
  }
  // WBMH beats CEH exactly when its bucket count O(log D(g)) is small —
  // polynomial and sub-polynomial decays (Section 5); other admissible
  // decays could have near-linear D (handled above for pure EXPD).
  if (decay.IsWbmhAdmissible()) return Backend::kWbmh;
  return Backend::kCeh;
}

template <typename T>
StatusOr<std::unique_ptr<DecayedAggregate>> Upcast(
    StatusOr<std::unique_ptr<T>> result) {
  if (!result.ok()) return result.status();
  return std::unique_ptr<DecayedAggregate>(std::move(result).value());
}

}  // namespace

Backend ResolveBackend(const DecayFunction& decay, Backend requested) {
  return requested == Backend::kAuto ? ResolveAuto(decay) : requested;
}

StatusOr<AggregateOptions> AggregateOptions::Builder::Build() const {
  if (!std::isfinite(options_.epsilon_) || !(options_.epsilon_ > 0.0) ||
      options_.epsilon_ > 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1]");
  }
  if (options_.start_ < 1) {
    return Status::InvalidArgument("start tick must be >= 1");
  }
  return options_;
}

StatusOr<std::unique_ptr<DecayedAggregate>> MakeDecayedSum(
    DecayPtr decay, const AggregateOptions& options) {
  if (decay == nullptr) {
    return Status::InvalidArgument("decay function required");
  }
  const Backend backend = ResolveBackend(*decay, options.backend());
  switch (backend) {
    case Backend::kExact:
      return Upcast(ExactDecayedSum::Create(std::move(decay)));
    case Backend::kEwma: {
      EwmaCounter::Options ewma_options;
      return Upcast(EwmaCounter::Create(std::move(decay), ewma_options));
    }
    case Backend::kRecentItems: {
      RecentItemsExpCounter::Options recent_options;
      recent_options.epsilon = options.epsilon();
      return Upcast(
          RecentItemsExpCounter::Create(std::move(decay), recent_options));
    }
    case Backend::kCeh: {
      CehDecayedSum::Options ceh_options;
      ceh_options.epsilon = options.epsilon();
      ceh_options.layout = options.layout();
      return Upcast(CehDecayedSum::Create(std::move(decay), ceh_options));
    }
    case Backend::kCoarseCeh: {
      CoarseCehDecayedSum::Options coarse_options;
      coarse_options.epsilon = options.epsilon();
      coarse_options.layout = options.layout();
      return Upcast(
          CoarseCehDecayedSum::Create(std::move(decay), coarse_options));
    }
    case Backend::kWbmh: {
      WbmhDecayedSum::Options wbmh_options;
      wbmh_options.epsilon = options.epsilon();
      wbmh_options.start = options.start();
      return Upcast(WbmhDecayedSum::Create(std::move(decay), wbmh_options));
    }
    case Backend::kPolyExp:
      return Upcast(PolyExpCounter::Create(std::move(decay)));
    case Backend::kAuto:
      break;
  }
  return Status::InvalidArgument("unknown backend");
}

StatusOr<DecayedAverage> MakeDecayedAverage(DecayPtr decay,
                                            const AggregateOptions& options) {
  auto sum = MakeDecayedSum(decay, options);
  if (!sum.ok()) return sum.status();
  auto count = MakeDecayedSum(decay, options);
  if (!count.ok()) return count.status();
  return DecayedAverage::Create(std::move(sum).value(),
                                std::move(count).value());
}

namespace {

StatusOr<AggregateOptions> FromLegacy(const LegacyAggregateOptions& legacy) {
  return AggregateOptions::Builder()
      .backend(legacy.backend)
      .epsilon(legacy.epsilon)
      .start(legacy.start)
      .Build();
}

}  // namespace

// Definitions of the deprecated shims (the attribute targets callers, not
// the out-of-line definitions, but some toolchains warn on both).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
StatusOr<std::unique_ptr<DecayedAggregate>> MakeDecayedSum(
    DecayPtr decay, const LegacyAggregateOptions& options) {
  auto validated = FromLegacy(options);
  if (!validated.ok()) return validated.status();
  return MakeDecayedSum(std::move(decay), validated.value());
}

StatusOr<DecayedAverage> MakeDecayedAverage(
    DecayPtr decay, const LegacyAggregateOptions& options) {
  auto validated = FromLegacy(options);
  if (!validated.ok()) return validated.status();
  return MakeDecayedAverage(std::move(decay), validated.value());
}
#pragma GCC diagnostic pop

}  // namespace tds
