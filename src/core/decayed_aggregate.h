#ifndef TDS_CORE_DECAYED_AGGREGATE_H_
#define TDS_CORE_DECAYED_AGGREGATE_H_

#include <cstdint>
#include <string>

#include "decay/decay_function.h"
#include "util/common.h"

namespace tds {

/// A maintained time-decaying sum (paper Problem 2.1, DSP): after a stream
/// of (tick, value) updates, Query(T) estimates
///   S_g(T) = sum_i f_i * g(AgeAt(t_i, T)).
/// With 0/1 values this is the Decaying Count Problem (DCP). Implementations
/// trade storage for approximation quality; StorageBits() reports the
/// paper's bit metric for the current state.
///
/// Single-threaded ("thread-compatible") by design, like the streaming
/// model itself: one writer owns the structure.
class DecayedAggregate {
 public:
  virtual ~DecayedAggregate() = default;

  /// Adds `value` unit items arriving at tick t. Ticks must be
  /// non-decreasing across calls; multiple updates per tick are allowed.
  virtual void Update(Tick t, uint64_t value) = 0;

  /// Estimated decayed sum at time `now` (>= the last update tick). May
  /// advance internal clocks/expiry; repeated queries at the same `now`
  /// return the same value.
  virtual double Query(Tick now) = 0;

  /// Storage consumed under the paper's bit-accounting metric.
  virtual size_t StorageBits() const = 0;

  /// Implementation name for reports, e.g. "CEH" or "WBMH".
  virtual std::string Name() const = 0;

  /// The decay function being maintained.
  virtual const DecayPtr& decay() const = 0;
};

}  // namespace tds

#endif  // TDS_CORE_DECAYED_AGGREGATE_H_
