#ifndef TDS_CORE_DECAYED_AGGREGATE_H_
#define TDS_CORE_DECAYED_AGGREGATE_H_

#include <cstdint>
#include <span>
#include <string>

#include "decay/decay_function.h"
#include "stream/stream.h"
#include "util/common.h"

namespace tds {

/// A maintained time-decaying sum (paper Problem 2.1, DSP): after a stream
/// of (tick, value) updates, Query(T) estimates
///   S_g(T) = sum_i f_i * g(AgeAt(t_i, T)).
/// With 0/1 values this is the Decaying Count Problem (DCP). Implementations
/// trade storage for approximation quality; StorageBits() reports the
/// paper's bit metric for the current state.
///
/// Time-handling contract:
///  * Update / UpdateBatch / Advance are *mutations* and must be called with
///    non-decreasing ticks by the single owning writer.
///  * Query(now) is const and side-effect free: it never advances clocks,
///    triggers expiry, or re-seeds RNG state, so any number of readers may
///    query a quiescent structure concurrently (e.g. the engine's snapshot
///    read path). `now` must be >= the last mutation tick; repeated queries
///    at one `now` return the same value.
///  * Advance(now) folds elapsed time into the structure explicitly:
///    expiry, bucket cascades, register decay. Callers that previously
///    relied on Query's hidden mutation for storage reclamation should call
///    Advance(now) first.
///
/// Single-threaded ("thread-compatible") by design, like the streaming
/// model itself: one writer owns the structure; concurrent const access is
/// safe only while no writer is active.
class DecayedAggregate {
 public:
  virtual ~DecayedAggregate() = default;

  /// Adds `value` unit items arriving at tick t. Ticks must be
  /// non-decreasing across calls; multiple updates per tick are allowed.
  virtual void Update(Tick t, uint64_t value) = 0;

  /// Batch update: equivalent to calling Update(item.t, item.value) for each
  /// item in order. Items must be tick-sorted (non-decreasing) and start at
  /// or after the last mutation tick. The default loops over Update();
  /// backends with amortizable structural work (EH/CEH, WBMH) override it to
  /// coalesce same-tick items and run cascades/merges once per batch — with
  /// results bit-identical to the per-item sequence.
  virtual void UpdateBatch(std::span<const StreamItem> items) {
    for (const StreamItem& item : items) Update(item.t, item.value);
  }

  /// Explicitly advances internal clocks to `now` (>= the last mutation
  /// tick): runs expiry, merges, and register decay. Equivalent to
  /// Update(now, 0) for every backend, which is the default.
  virtual void Advance(Tick now) { Update(now, 0); }

  /// Estimated decayed sum at time `now` (>= the last mutation tick).
  /// Const and side-effect free; see the class comment for the contract.
  virtual double Query(Tick now) const = 0;

  /// Storage consumed under the paper's bit-accounting metric.
  virtual size_t StorageBits() const = 0;

  /// Implementation name for reports, e.g. "CEH" or "WBMH".
  virtual std::string Name() const = 0;

  /// The decay function being maintained.
  virtual const DecayPtr& decay() const = 0;
};

}  // namespace tds

#endif  // TDS_CORE_DECAYED_AGGREGATE_H_
