#ifndef TDS_CORE_CEH_H_
#define TDS_CORE_CEH_H_

#include <memory>
#include <string>

#include "core/decayed_aggregate.h"
#include "histogram/exponential_histogram.h"
#include "util/status.h"

namespace tds {

/// Cascaded Exponential Histogram (paper Section 4.2, Theorem 1): estimates
/// the decayed sum under *any* decay function from a single Exponential
/// Histogram, using summation by parts (Eq. 3):
///   S_g(T) = g(N) S_win_N(T) + sum_i (g(N-i) - g(N-i+1)) S_win_{N-i}(T).
/// Substituting the EH's window estimates and telescoping per bucket gives
/// the O(log N)-term form (Eq. 4): with consecutive bucket end-ages
/// a_0 < a_1 < ... (a_0 newest), bucket j contributes
///   C_j * (g(a_j) + g(a_{j+1})) / 2
/// (the (1/2) is the EH's half-count rule for the straddling bucket,
/// telescoped across windows; the oldest bucket pairs with the age of the
/// first arrival, or weight 0 past the horizon).
///
/// Storage O(eps^{-1} log^2 N) bits, query O(#buckets) = O(log N).
class CehDecayedSum : public DecayedAggregate {
 public:
  struct Options {
    double epsilon = 0.1;
    /// Bucket-storage layout of the underlying histogram; see
    /// ExponentialHistogram::Options::layout. Bit-identical either way.
    HistogramLayout layout = HistogramLayout::kFlat;
  };

  static StatusOr<std::unique_ptr<CehDecayedSum>> Create(
      DecayPtr decay, const Options& options);

  void Update(Tick t, uint64_t value) override;
  /// Amortized batch path: same-tick items are coalesced into one histogram
  /// insertion, so the EH's merge cascade runs once per distinct tick
  /// instead of once per item. Bit-identical to the per-item sequence (the
  /// EH's InsertUnits implements sequential-insertion semantics).
  void UpdateBatch(std::span<const StreamItem> items) override;
  void Advance(Tick now) override;
  /// Const and side-effect free: expired buckets contribute weight 0 via
  /// SafeWeight, so skipping the histogram's expiry sweep never changes the
  /// estimate. Call Advance(now) to actually reclaim their storage.
  double Query(Tick now) const override;
  size_t StorageBits() const override;
  std::string Name() const override { return "CEH"; }
  const DecayPtr& decay() const override { return decay_; }

  const ExponentialHistogram& histogram() const { return eh_; }

  /// Merges another CEH over a disjoint substream (same decay + epsilon):
  /// the distributed-streams setting. See ExponentialHistogram::MergeFrom,
  /// which runs the post-mutation audit itself.
  Status MergeFrom(const CehDecayedSum& other) {  // tds-analyze: allow(audit-hook)
    return eh_.MergeFrom(other.eh_);
  }

  /// Snapshot support (delegates to the histogram).
  void EncodeState(class Encoder& encoder) const { eh_.EncodeState(encoder); }
  Status DecodeState(class Decoder& decoder);

  /// Audits the underlying histogram (see util/audit.h).
  Status AuditInvariants() const;

 private:
  CehDecayedSum(DecayPtr decay, ExponentialHistogram eh);

  double SafeWeight(Tick age) const;

  DecayPtr decay_;
  ExponentialHistogram eh_;
};

}  // namespace tds

#endif  // TDS_CORE_CEH_H_
