#ifndef TDS_CORE_RECENT_ITEMS_H_
#define TDS_CORE_RECENT_ITEMS_H_

#include <memory>
#include <set>
#include <string>

#include "core/decayed_aggregate.h"
#include "decay/exponential.h"
#include "util/status.h"

namespace tds {

/// The "C most recent items" algorithm from the upper bound of Lemma 3.1:
/// for exponential decay it suffices to remember the timestamps of the
///   C = ceil(lambda^{-1} * ln(1 / ((1 - e^{-lambda}) * eps)))
/// most recent items; everything older contributes at most an eps fraction.
/// Non-binary values are folded into shifted timestamps (the paper's
/// footnote 3): an item of value v at tick t is treated as a unit item at
/// effective time t + ln(v)/lambda, which has the same decayed
/// contribution. Storage: C timestamps of log N bits each.
class RecentItemsExpCounter : public DecayedAggregate {
 public:
  struct Options {
    /// Approximation target used to size C.
    double epsilon = 0.1;
  };

  static StatusOr<std::unique_ptr<RecentItemsExpCounter>> Create(
      DecayPtr decay, const Options& options);

  void Update(Tick t, uint64_t value) override;
  void Advance(Tick now) override;
  double Query(Tick now) const override;
  size_t StorageBits() const override;
  std::string Name() const override { return "RECENT_ITEMS"; }
  const DecayPtr& decay() const override { return decay_; }

  /// The retention constant C from Lemma 3.1.
  size_t capacity() const { return capacity_; }

  /// Structural invariants: at most C finite effective timestamps.
  Status AuditInvariants() const;

  /// Snapshot support.
  void EncodeState(class Encoder& encoder) const;
  Status DecodeState(class Decoder& decoder);

 private:
  RecentItemsExpCounter(DecayPtr decay, double lambda, size_t capacity);

  DecayPtr decay_;
  double lambda_;
  size_t capacity_;

  /// Effective (value-shifted) timestamps, largest = most recent; kept to
  /// the C largest.
  std::multiset<double> effective_times_;
  Tick now_ = 0;
};

}  // namespace tds

#endif  // TDS_CORE_RECENT_ITEMS_H_
