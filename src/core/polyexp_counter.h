#ifndef TDS_CORE_POLYEXP_COUNTER_H_
#define TDS_CORE_POLYEXP_COUNTER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/decayed_aggregate.h"
#include "decay/polyexponential.h"
#include "util/status.h"

namespace tds {

/// Polyexponential decay g(x) = x^k e^{-lambda x} / k! via k+1 pipelined
/// exponential registers (paper Section 3.4; Brown's double/triple
/// exponential smoothing for k = 1, 2). The registers hold the decayed
/// power moments
///   M_j = sum_i f_i * (now - t_i)^j * e^{-lambda (now - t_i)},
/// advanced over a gap D with the binomial identity
///   M_j <- e^{-lambda D} * sum_{r<=j} C(j,r) D^{j-r} M_r,
/// so updates cost O(k^2) regardless of gap length. The decayed sum under
/// any degree-k polynomial p(x) e^{-lambda x} is a fixed linear combination
/// of the registers (QueryPolynomial).
/// Accepts PolyExponentialDecay (monomial x^k e^{-lambda x}/k!) or
/// GeneralPolyExpDecay (arbitrary nonnegative-coefficient p(x) e^{-lambda x});
/// Query() evaluates the registered decay's own polynomial.
class PolyExpCounter : public DecayedAggregate {
 public:
  static StatusOr<std::unique_ptr<PolyExpCounter>> Create(DecayPtr decay);

  /// Convenience overload constructing the monomial decay internally.
  static StatusOr<std::unique_ptr<PolyExpCounter>> Create(int k,
                                                          double lambda);

  void Update(Tick t, uint64_t value) override;
  void UpdateBatch(std::span<const StreamItem> items) override;
  void Advance(Tick now) override;
  double Query(Tick now) const override;
  size_t StorageBits() const override;
  std::string Name() const override { return "POLYEXP_PIPE"; }
  const DecayPtr& decay() const override { return decay_; }

  /// Decayed sum under p(x) e^{-lambda x} where p(x) = sum_j coeffs[j] x^j
  /// (coeffs.size() <= k+1).
  double QueryPolynomial(const std::vector<double>& coeffs, Tick now) const;

  /// Raw register values (for tests).
  const std::vector<double>& registers() const { return registers_; }

  /// Structural invariants: k+1 finite nonnegative moment registers (every
  /// M_j is a sum of nonnegative terms), a consistent Pascal triangle, and
  /// a query polynomial of degree <= k.
  Status AuditInvariants() const;

  /// Snapshot support.
  void EncodeState(class Encoder& encoder) const;
  Status DecodeState(class Decoder& decoder);

 private:
  PolyExpCounter(DecayPtr decay, int k, double lambda,
                 std::vector<double> query_coeffs);

  void AdvanceTo(Tick t);

  /// Register values after a side-effect-free advance to `t` (the binomial
  /// gap jump computed into a temporary; the stored state is untouched).
  std::vector<double> RegistersAt(Tick t) const;

  DecayPtr decay_;
  int k_;
  double lambda_;
  std::vector<double> query_coeffs_;  ///< p(x) evaluated by Query().
  std::vector<std::vector<double>> binomial_;  ///< Pascal rows 0..k.
  std::vector<double> registers_;              ///< M_0..M_k.
  Tick now_ = 0;
};

}  // namespace tds

#endif  // TDS_CORE_POLYEXP_COUNTER_H_
