#include "core/exact.h"

#include <cmath>

#include "util/audit.h"
#include "util/check.h"
#include "util/codec.h"

namespace tds {

StatusOr<std::unique_ptr<ExactDecayedSum>> ExactDecayedSum::Create(
    DecayPtr decay) {
  if (decay == nullptr) {
    return Status::InvalidArgument("decay function required");
  }
  return std::unique_ptr<ExactDecayedSum>(new ExactDecayedSum(std::move(decay)));
}

void ExactDecayedSum::Update(Tick t, uint64_t value) {
  TDS_CHECK_GE(t, now_);
  now_ = t;
  // Prune even when value == 0: a zero-value update still advances the
  // clock, and entries past the horizon must not outlive it (the audit's
  // horizon invariant; an early return here once leaked expired entries
  // until the next non-zero update).
  if (value != 0) {
    if (!items_.empty() && items_.back().t == t) {
      items_.back().value += value;
    } else {
      items_.push_back(Entry{t, value});
    }
  }
  const Tick horizon = decay_->Horizon();
  if (horizon != kInfiniteHorizon) {
    while (!items_.empty() && AgeAt(items_.front().t, now_) > horizon) {
      items_.pop_front();
    }
  }
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void ExactDecayedSum::Advance(Tick now) {
  TDS_CHECK_GE(now, now_);
  now_ = now;
  const Tick horizon = decay_->Horizon();
  if (horizon != kInfiniteHorizon) {
    while (!items_.empty() && AgeAt(items_.front().t, now_) > horizon) {
      items_.pop_front();
    }
  }
  TDS_AUDIT_MUTATION(AuditInvariants());
}

Status ExactDecayedSum::AuditInvariants() const {
  Tick previous = -1;
  bool first = true;
  const Tick horizon = decay_->Horizon();
  for (const Entry& entry : items_) {
    TDS_AUDIT_CHECK(first || entry.t > previous, "item ticks not increasing");
    TDS_AUDIT_CHECK(entry.t <= now_, "item tick past the clock");
    TDS_AUDIT_CHECK(entry.value > 0, "zero-value item retained");
    previous = entry.t;
    first = false;
  }
  if (horizon != kInfiniteHorizon && !items_.empty()) {
    TDS_AUDIT_CHECK(AgeAt(items_.front().t, now_) <= horizon,
                    "item retained past the decay horizon");
  }
  return Status::OK();
}

double ExactDecayedSum::Query(Tick now) const {
  TDS_CHECK_GE(now, now_);
  double sum = 0.0;
  const Tick horizon = decay_->Horizon();
  for (const Entry& e : items_) {
    const Tick age = AgeAt(e.t, now);
    if (horizon != kInfiniteHorizon && age > horizon) continue;
    sum += static_cast<double>(e.value) * decay_->Weight(age);
  }
  return sum;
}

void ExactDecayedSum::EncodeState(Encoder& encoder) const {
  encoder.PutSigned(now_);
  encoder.PutVarint(items_.size());
  Tick previous = 0;
  for (const Entry& entry : items_) {
    encoder.PutVarint(static_cast<uint64_t>(entry.t - previous));
    previous = entry.t;
    encoder.PutVarint(entry.value);
  }
}

Status ExactDecayedSum::DecodeState(Decoder& decoder) {
  uint64_t size = 0;
  if (!decoder.GetSigned(&now_) || !decoder.GetVarint(&size)) {
    return CorruptSnapshot("Exact header");
  }
  items_.clear();
  Tick previous = 0;
  for (uint64_t i = 0; i < size; ++i) {
    uint64_t delta = 0, value = 0;
    if (!decoder.GetVarint(&delta) || !decoder.GetVarint(&value)) {
      return CorruptSnapshot("Exact entry");
    }
    previous += static_cast<Tick>(delta);
    items_.push_back(Entry{previous, value});
  }
  // Hostile-snapshot funnel: structural validation IS the audit protocol,
  // so a corrupt blob is rejected instead of installed.
  const Status audit = AuditInvariants();
  if (!audit.ok()) {
    return Status::InvalidArgument("corrupt snapshot: " + audit.message());
  }
  return Status::OK();
}

size_t ExactDecayedSum::StorageBits() const {
  // Each entry: a timestamp plus an exact count.
  const Tick elapsed = items_.empty() ? 1 : now_ - items_.front().t + 1;
  const double ts_bits =
      std::ceil(std::log2(static_cast<double>(std::max<Tick>(elapsed, 2)) + 1));
  double bits = ts_bits;  // clock register
  for (const Entry& e : items_) {
    bits += ts_bits +
            std::ceil(std::log2(static_cast<double>(e.value) + 1.0));
  }
  return static_cast<size_t>(bits);
}

}  // namespace tds
