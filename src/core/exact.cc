#include "core/exact.h"

#include <cmath>

#include "util/check.h"
#include "util/codec.h"

namespace tds {

StatusOr<std::unique_ptr<ExactDecayedSum>> ExactDecayedSum::Create(
    DecayPtr decay) {
  if (decay == nullptr) {
    return Status::InvalidArgument("decay function required");
  }
  return std::unique_ptr<ExactDecayedSum>(new ExactDecayedSum(std::move(decay)));
}

void ExactDecayedSum::Update(Tick t, uint64_t value) {
  TDS_CHECK_GE(t, now_);
  now_ = t;
  if (value == 0) return;
  if (!items_.empty() && items_.back().t == t) {
    items_.back().value += value;
  } else {
    items_.push_back(Entry{t, value});
  }
  const Tick horizon = decay_->Horizon();
  if (horizon != kInfiniteHorizon) {
    while (!items_.empty() && AgeAt(items_.front().t, now_) > horizon) {
      items_.pop_front();
    }
  }
}

void ExactDecayedSum::Advance(Tick now) {
  TDS_CHECK_GE(now, now_);
  now_ = now;
  const Tick horizon = decay_->Horizon();
  if (horizon != kInfiniteHorizon) {
    while (!items_.empty() && AgeAt(items_.front().t, now_) > horizon) {
      items_.pop_front();
    }
  }
}

double ExactDecayedSum::Query(Tick now) const {
  TDS_CHECK_GE(now, now_);
  double sum = 0.0;
  const Tick horizon = decay_->Horizon();
  for (const Entry& e : items_) {
    const Tick age = AgeAt(e.t, now);
    if (horizon != kInfiniteHorizon && age > horizon) continue;
    sum += static_cast<double>(e.value) * decay_->Weight(age);
  }
  return sum;
}

void ExactDecayedSum::EncodeState(Encoder& encoder) const {
  encoder.PutSigned(now_);
  encoder.PutVarint(items_.size());
  Tick previous = 0;
  for (const Entry& entry : items_) {
    encoder.PutVarint(static_cast<uint64_t>(entry.t - previous));
    previous = entry.t;
    encoder.PutVarint(entry.value);
  }
}

Status ExactDecayedSum::DecodeState(Decoder& decoder) {
  uint64_t size = 0;
  if (!decoder.GetSigned(&now_) || !decoder.GetVarint(&size)) {
    return CorruptSnapshot("Exact header");
  }
  items_.clear();
  Tick previous = 0;
  for (uint64_t i = 0; i < size; ++i) {
    uint64_t delta = 0, value = 0;
    if (!decoder.GetVarint(&delta) || !decoder.GetVarint(&value)) {
      return CorruptSnapshot("Exact entry");
    }
    previous += static_cast<Tick>(delta);
    items_.push_back(Entry{previous, value});
  }
  return Status::OK();
}

size_t ExactDecayedSum::StorageBits() const {
  // Each entry: a timestamp plus an exact count.
  const Tick elapsed = items_.empty() ? 1 : now_ - items_.front().t + 1;
  const double ts_bits =
      std::ceil(std::log2(static_cast<double>(std::max<Tick>(elapsed, 2)) + 1));
  double bits = ts_bits;  // clock register
  for (const Entry& e : items_) {
    bits += ts_bits +
            std::ceil(std::log2(static_cast<double>(e.value) + 1.0));
  }
  return static_cast<size_t>(bits);
}

}  // namespace tds
