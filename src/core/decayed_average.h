#ifndef TDS_CORE_DECAYED_AVERAGE_H_
#define TDS_CORE_DECAYED_AVERAGE_H_

#include <memory>
#include <string>

#include "core/decayed_aggregate.h"
#include "util/status.h"

namespace tds {

/// Time-decaying average (paper Problem 2.2, DAP):
///   A_g(T) = sum_i f_i g(age_i) / sum_i g(age_i).
/// The numerator is a decayed sum of the value stream and the denominator a
/// decayed count of the arrival stream {(t_i, 1)}; both are maintained by
/// any DecayedAggregate backend, and the ratio of two (1 +- eps) estimates
/// is a (1 +- ~2 eps) estimate of the average.
///
/// Update(t, value) feeds `value` to the numerator and 1 (one observation)
/// to the denominator — i.e. each call is one observed measurement.
class DecayedAverage {
 public:
  /// Takes ownership of two freshly-created structures over the same decay.
  static StatusOr<DecayedAverage> Create(
      std::unique_ptr<DecayedAggregate> sum,
      std::unique_ptr<DecayedAggregate> count);

  /// Records one observation of `value` at tick t.
  void Observe(Tick t, uint64_t value);

  /// Advances both components' clocks/expiry to `now` (see
  /// DecayedAggregate::Advance).
  void Advance(Tick now) {
    sum_->Advance(now);
    count_->Advance(now);
  }

  /// Estimated decayed average at `now`; returns fallback if no weight.
  /// Const and side-effect free (see DecayedAggregate::Query).
  double Query(Tick now, double fallback = 0.0) const;

  /// Decayed sum and count components.
  double QuerySum(Tick now) const { return sum_->Query(now); }
  double QueryCount(Tick now) const { return count_->Query(now); }

  size_t StorageBits() const {
    return sum_->StorageBits() + count_->StorageBits();
  }

  std::string Name() const { return "AVG[" + sum_->Name() + "]"; }

  /// Component access (snapshot support; see core/snapshot.h).
  DecayedAggregate& sum_component() { return *sum_; }
  DecayedAggregate& count_component() { return *count_; }

 private:
  DecayedAverage(std::unique_ptr<DecayedAggregate> sum,
                 std::unique_ptr<DecayedAggregate> count)
      : sum_(std::move(sum)), count_(std::move(count)) {}

  std::unique_ptr<DecayedAggregate> sum_;
  std::unique_ptr<DecayedAggregate> count_;
};

}  // namespace tds

#endif  // TDS_CORE_DECAYED_AVERAGE_H_
