#ifndef TDS_CORE_COARSE_CEH_H_
#define TDS_CORE_COARSE_CEH_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/decayed_aggregate.h"
#include "histogram/flat_store.h"
#include "util/approx_age.h"
#include "util/random.h"
#include "util/status.h"

namespace tds {

/// CEH with approximately-maintained time boundaries — the paper's
/// Section 5 closing remark (attributed to Y. Matias): for polynomial
/// decay, a constant-factor error in a bucket's boundary is only a
/// constant-factor error in that bucket's contribution, so boundaries can
/// be kept in O(log log N) bits each (ApproxAge), cutting the CEH's
/// O(eps^-1 log^2 N) to O(eps^-1 log N log log N) — the same storage class
/// as the WBMH, by a different route.
///
/// The histogram is the same domination-based structure as the exact CEH
/// (power-of-two bucket counts, at most `cap` buckets per size class, two
/// oldest merge on overflow); only the boundary representation changes.
/// The estimate weights each bucket by g(approximate boundary age).
///
/// Guarantee: a constant-factor approximation for POLYD (the grid ratio
/// and stochastic aging each contribute a bounded factor); the
/// decay_families benchmark measures the constant. For (1 +- eps) answers
/// use CehDecayedSum or WbmhDecayedSum.
class CoarseCehDecayedSum : public DecayedAggregate {
 public:
  struct Options {
    /// Bucket-count budget parameter, as in the exact CEH.
    double epsilon = 0.1;
    /// Boundary grid ratio (1 + delta): the age quantization coarseness.
    double boundary_delta = 0.25;
    uint64_t seed = 0xa9e5;
    /// Bucket-storage layout; see ExponentialHistogram::Options::layout.
    /// Bit-identical either way, including the RNG consumption order of the
    /// stochastic aging sweep.
    HistogramLayout layout = HistogramLayout::kFlat;
  };

  static StatusOr<std::unique_ptr<CoarseCehDecayedSum>> Create(
      DecayPtr decay, const Options& options);

  void Update(Tick t, uint64_t value) override;
  void Advance(Tick now) override;
  /// Const and side-effect free: weights each bucket by its stored
  /// approximate boundary age plus the deterministic gap since the last
  /// mutation (the stochastic aging itself only runs inside
  /// Update/Advance, so reads never touch the RNG).
  double Query(Tick now) const override;
  size_t StorageBits() const override;
  std::string Name() const override { return "COARSE_CEH"; }
  const DecayPtr& decay() const override { return decay_; }

  size_t BucketCount() const;

  /// Approximate boundary ages, oldest first (for tests).
  std::vector<double> BoundaryAges() const;

  /// Structural invariants: every bucket in class c counts exactly 2^c,
  /// the class total matches total_count_, per-class sizes respect the
  /// cap bound, and all boundary ages are finite, >= 1, and covered by
  /// max_age_seen_. (Age *ordering* across buckets is deliberately not
  /// audited: stochastic aging may reorder estimates.)
  Status AuditInvariants() const;

  /// Snapshot support.
  void EncodeState(class Encoder& encoder) const;
  Status DecodeState(class Decoder& decoder);

 private:
  struct Bucket {
    ApproxAge age;
    uint64_t count = 0;
  };

  CoarseCehDecayedSum(DecayPtr decay, const Options& options);

  void AdvanceTo(Tick t);
  void InsertUnits(uint64_t units);
  void Expire();

  DecayPtr decay_;
  Options options_;
  uint64_t cap_;
  Rng rng_;

  /// kChain storage — classes_[i]: buckets of count 2^i, oldest at the
  /// front; every bucket in classes_[i] is newer than every bucket in
  /// classes_[i+1]. Empty under kFlat.
  std::vector<std::deque<Bucket>> classes_;
  /// kFlat storage: the same buckets in contiguous SoA arrays (stamps =
  /// approximate boundary ages). Empty under kChain.
  FlatBucketStore<ApproxAge> flat_;

  Tick now_ = 0;
  uint64_t total_count_ = 0;
  double max_age_seen_ = 2.0;
};

}  // namespace tds

#endif  // TDS_CORE_COARSE_CEH_H_
