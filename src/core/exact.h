#ifndef TDS_CORE_EXACT_H_
#define TDS_CORE_EXACT_H_

#include <deque>
#include <memory>
#include <string>

#include "core/decayed_aggregate.h"
#include "util/status.h"

namespace tds {

/// Exact reference implementation: stores every (tick, value) pair (pruning
/// only items past the decay horizon) and evaluates S_g by direct
/// summation. Linear storage — the paper's Lemmas 3.1/3.2 show this is
/// unavoidable for exact answers — so it serves as ground truth for tests
/// and benchmarks, not as a streaming algorithm.
class ExactDecayedSum : public DecayedAggregate {
 public:
  static StatusOr<std::unique_ptr<ExactDecayedSum>> Create(DecayPtr decay);

  void Update(Tick t, uint64_t value) override;
  void Advance(Tick now) override;
  double Query(Tick now) const override;
  size_t StorageBits() const override;
  std::string Name() const override { return "EXACT"; }
  const DecayPtr& decay() const override { return decay_; }

  /// Number of retained (tick, value) pairs.
  size_t ItemCount() const { return items_.size(); }

  /// Structural invariants: strictly increasing item ticks bounded by the
  /// clock, positive values, and no item past a finite horizon.
  Status AuditInvariants() const;

  /// Snapshot support.
  void EncodeState(class Encoder& encoder) const;
  Status DecodeState(class Decoder& decoder);

 private:
  explicit ExactDecayedSum(DecayPtr decay) : decay_(std::move(decay)) {}

  struct Entry {
    Tick t;
    uint64_t value;
  };

  DecayPtr decay_;
  std::deque<Entry> items_;
  Tick now_ = 0;
};

}  // namespace tds

#endif  // TDS_CORE_EXACT_H_
