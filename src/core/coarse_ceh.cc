#include "core/coarse_ceh.h"

#include <algorithm>
#include <cmath>

#include "util/audit.h"
#include "util/check.h"

namespace tds {

CoarseCehDecayedSum::CoarseCehDecayedSum(DecayPtr decay,
                                         const Options& options)
    : decay_(std::move(decay)), options_(options), rng_(options.seed) {
  cap_ = static_cast<uint64_t>(std::ceil(1.0 / options_.epsilon)) + 1;
}

StatusOr<std::unique_ptr<CoarseCehDecayedSum>> CoarseCehDecayedSum::Create(
    DecayPtr decay, const Options& options) {
  if (decay == nullptr) {
    return Status::InvalidArgument("decay function required");
  }
  if (!(options.epsilon > 0.0) || options.epsilon > 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1]");
  }
  if (!(options.boundary_delta > 0.0)) {
    return Status::InvalidArgument("boundary_delta must be > 0");
  }
  return std::unique_ptr<CoarseCehDecayedSum>(
      new CoarseCehDecayedSum(std::move(decay), options));
}

void CoarseCehDecayedSum::AdvanceTo(Tick t) {
  TDS_CHECK_GE(t, now_);
  const Tick gap = t - now_;
  now_ = t;
  if (gap == 0) return;
  if (options_.layout == HistogramLayout::kFlat) {
    // Ascending-class segment order == the chain layout's `for (cls :
    // classes_)` order, so the shared RNG is consumed identically and the
    // two layouts stay bit-identical through stochastic aging.
    flat_.ForEachSegmentAscendingClass(
        [this, gap](size_t, size_t begin, size_t end) {
          for (size_t k = begin; k < end; ++k) {
            ApproxAge& age = flat_.stamp(k);
            age.Advance(gap, rng_);
            max_age_seen_ = std::max(max_age_seen_, age.Estimate());
          }
        });
  } else {
    for (auto& cls : classes_) {
      for (Bucket& bucket : cls) {
        bucket.age.Advance(gap, rng_);
        max_age_seen_ = std::max(max_age_seen_, bucket.age.Estimate());
      }
    }
  }
  Expire();
}

void CoarseCehDecayedSum::Update(Tick t, uint64_t value) {
  AdvanceTo(t);
  if (value == 0) return;
  total_count_ += value;
  InsertUnits(value);
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void CoarseCehDecayedSum::InsertUnits(uint64_t incoming_units) {
  // Same canonical digit arithmetic as ExponentialHistogram::InsertUnits,
  // with approximate ages in place of timestamps: all incoming buckets are
  // brand new (age 1); a merge keeps the *younger* boundary.
  if (options_.layout == HistogramLayout::kFlat) {
    const ApproxAge fresh_age(options_.boundary_delta);
    flat_.InsertUnits(incoming_units, fresh_age, cap_,
                      [](const ApproxAge& older, const ApproxAge& newer) {
                        ApproxAge merged = older;
                        merged.TakeYounger(newer);
                        return merged;
                      });
    return;
  }
  uint64_t virtual_new = incoming_units;
  std::vector<Bucket> real_carries;
  const ApproxAge fresh(options_.boundary_delta);
  size_t i = 0;
  while (true) {
    if (i >= classes_.size()) classes_.emplace_back();
    auto& cls = classes_[i];
    const uint64_t total = cls.size() + virtual_new;
    uint64_t next_virtual = 0;
    real_carries.clear();
    if (total > cap_) {
      const uint64_t merges = (total - cap_ + 1) / 2;
      for (uint64_t m = 0; m < merges; ++m) {
        if (cls.size() >= 2) {
          Bucket a = cls.front();
          cls.pop_front();
          Bucket b = cls.front();
          cls.pop_front();
          a.age.TakeYounger(b.age);
          a.count += b.count;
          real_carries.push_back(a);
        } else if (cls.size() == 1) {
          Bucket a = cls.front();
          cls.pop_front();
          TDS_CHECK_GE(virtual_new, 1u);
          --virtual_new;
          a.age = fresh;  // merged with a just-arrived unit bucket
          a.count <<= 1;
          real_carries.push_back(a);
        } else {
          const uint64_t remaining = merges - m;
          TDS_CHECK_GE(virtual_new, 2 * remaining);
          virtual_new -= 2 * remaining;
          next_virtual += remaining;
          break;
        }
      }
    }
    const uint64_t unit = uint64_t{1} << i;
    for (uint64_t v = 0; v < virtual_new; ++v) {
      cls.push_back(Bucket{fresh, unit});
    }
    if (real_carries.empty() && next_virtual == 0) break;
    if (i + 1 >= classes_.size()) classes_.emplace_back();
    for (const Bucket& carry : real_carries) classes_[i + 1].push_back(carry);
    virtual_new = next_virtual;
    ++i;
  }
}

void CoarseCehDecayedSum::Expire() {
  const Tick horizon = decay_->Horizon();
  if (horizon == kInfiniteHorizon || total_count_ == 0) return;
  if (options_.layout == HistogramLayout::kFlat) {
    const double horizon_age = static_cast<double>(horizon);
    total_count_ -= flat_.ExpireOldest([horizon_age](const ApproxAge& age) {
      return age.Estimate() > horizon_age;
    });
    return;
  }
  for (size_t c = classes_.size(); c-- > 0;) {
    auto& cls = classes_[c];
    while (!cls.empty() &&
           cls.front().age.Estimate() > static_cast<double>(horizon)) {
      total_count_ -= cls.front().count;
      cls.pop_front();
    }
    if (!cls.empty()) break;
  }
}

void CoarseCehDecayedSum::Advance(Tick now) {
  AdvanceTo(now);
  TDS_AUDIT_MUTATION(AuditInvariants());
}

Status CoarseCehDecayedSum::AuditInvariants() const {
  TDS_AUDIT_CHECK(now_ >= 0, "negative clock");
  TDS_AUDIT_CHECK(std::isfinite(max_age_seen_) && max_age_seen_ >= 1.0,
                  "max age must be finite and >= 1");
  uint64_t checksum = 0;
  auto check_bucket = [&](size_t c, const ApproxAge& boundary,
                          uint64_t count) -> Status {
    TDS_AUDIT_CHECK(count == (uint64_t{1} << c),
                    "bucket count not the class power of two");
    const double age = boundary.Estimate();
    TDS_AUDIT_CHECK(std::isfinite(age) && age >= 1.0,
                    "boundary age must be finite and >= 1");
    TDS_AUDIT_CHECK(age <= max_age_seen_,
                    "boundary age past the recorded maximum");
    checksum += count;
    return Status::OK();
  };
  if (options_.layout == HistogramLayout::kFlat) {
    TDS_AUDIT_CHECK(classes_.empty(),
                    "chain storage populated under the flat layout");
    TDS_AUDIT_CHECK(flat_.num_classes() <= 64, "more than 64 size classes");
    size_t segment_sum = 0;
    for (size_t c = 0; c < flat_.num_classes(); ++c) {
      TDS_AUDIT_CHECK(flat_.class_size(c) <= 2 * cap_ + 2,
                      "class exceeds cap bound");
      segment_sum += flat_.class_size(c);
    }
    TDS_AUDIT_CHECK(segment_sum == flat_.size(),
                    "flat class segments disagree with bucket storage");
    Status bucket_status = Status::OK();
    flat_.ForEachSegmentAscendingClass(
        [&](size_t c, size_t begin, size_t end) {
          for (size_t k = begin; k < end && bucket_status.ok(); ++k) {
            bucket_status = check_bucket(c, flat_.stamp(k), flat_.count(k));
          }
        });
    if (!bucket_status.ok()) return bucket_status;
  } else {
    TDS_AUDIT_CHECK(flat_.empty() && flat_.num_classes() == 0,
                    "flat storage populated under the chain layout");
    TDS_AUDIT_CHECK(classes_.size() <= 64, "more than 64 size classes");
    for (size_t c = 0; c < classes_.size(); ++c) {
      const auto& cls = classes_[c];
      TDS_AUDIT_CHECK(cls.size() <= 2 * cap_ + 2, "class exceeds cap bound");
      for (const Bucket& bucket : cls) {
        const Status bucket_status =
            check_bucket(c, bucket.age, bucket.count);
        if (!bucket_status.ok()) return bucket_status;
      }
    }
  }
  TDS_AUDIT_CHECK(checksum == total_count_,
                  "bucket counts do not sum to the total");
  return Status::OK();
}

double CoarseCehDecayedSum::Query(Tick now) const {
  TDS_CHECK_GE(now, now_);
  const double gap = static_cast<double>(now - now_);
  const Tick horizon = decay_->Horizon();
  double sum = 0.0;
  auto accumulate = [&](const ApproxAge& boundary, uint64_t count) {
    const double age_estimate = std::max(1.0, boundary.Estimate() + gap);
    const auto age = static_cast<Tick>(std::llround(age_estimate));
    if (age > horizon) return;
    sum += static_cast<double>(count) * decay_->Weight(age);
  };
  if (options_.layout == HistogramLayout::kFlat) {
    // Ascending-class order matches the chain walk, keeping the floating-
    // point summation order — and so the query answer — bit-identical.
    flat_.ForEachSegmentAscendingClass(
        [&](size_t, size_t begin, size_t end) {
          for (size_t k = begin; k < end; ++k) {
            accumulate(flat_.stamp(k), flat_.count(k));
          }
        });
  } else {
    for (const auto& cls : classes_) {
      for (const Bucket& bucket : cls) accumulate(bucket.age, bucket.count);
    }
  }
  return sum;
}

size_t CoarseCehDecayedSum::BucketCount() const {
  if (options_.layout == HistogramLayout::kFlat) return flat_.size();
  size_t n = 0;
  for (const auto& cls : classes_) n += cls.size();
  return n;
}

std::vector<double> CoarseCehDecayedSum::BoundaryAges() const {
  std::vector<double> ages;
  if (options_.layout == HistogramLayout::kFlat) {
    flat_.ForEachOldestFirst([&ages](const ApproxAge& age, uint64_t) {
      ages.push_back(age.Estimate());
    });
    return ages;
  }
  for (size_t c = classes_.size(); c-- > 0;) {
    for (const Bucket& bucket : classes_[c]) {
      ages.push_back(bucket.age.Estimate());
    }
  }
  return ages;
}

void CoarseCehDecayedSum::EncodeState(Encoder& encoder) const {
  encoder.PutDouble(options_.epsilon);
  encoder.PutDouble(options_.boundary_delta);
  encoder.PutSigned(now_);
  encoder.PutVarint(total_count_);
  encoder.PutDouble(max_age_seen_);
  uint64_t rng_state[4];
  rng_.SaveState(rng_state);
  for (uint64_t word : rng_state) encoder.PutVarint(word);
  if (options_.layout == HistogramLayout::kFlat) {
    // Same wire format as the chain branch (class count includes emptied
    // classes; per-class buckets oldest first) — byte-identical output.
    encoder.PutVarint(flat_.num_classes());
    flat_.ForEachSegmentAscendingClass(
        [this, &encoder](size_t, size_t begin, size_t end) {
          encoder.PutVarint(end - begin);
          for (size_t k = begin; k < end; ++k) {
            flat_.stamp(k).EncodeTo(encoder);
            encoder.PutVarint(flat_.count(k));
          }
        });
    return;
  }
  encoder.PutVarint(classes_.size());
  for (const auto& cls : classes_) {
    encoder.PutVarint(cls.size());
    for (const Bucket& bucket : cls) {
      bucket.age.EncodeTo(encoder);
      encoder.PutVarint(bucket.count);
    }
  }
}

Status CoarseCehDecayedSum::DecodeState(Decoder& decoder) {
  double epsilon = 0.0, delta = 0.0;
  if (!decoder.GetDouble(&epsilon) || !decoder.GetDouble(&delta)) {
    return CorruptSnapshot("CoarseCEH header");
  }
  if (epsilon != options_.epsilon || delta != options_.boundary_delta) {
    return Status::InvalidArgument("snapshot options mismatch");
  }
  uint64_t total = 0, class_count = 0;
  if (!decoder.GetSigned(&now_) || !decoder.GetVarint(&total) ||
      !decoder.GetDouble(&max_age_seen_)) {
    return CorruptSnapshot("CoarseCEH clock");
  }
  uint64_t rng_state[4];
  for (uint64_t& word : rng_state) {
    if (!decoder.GetVarint(&word)) return CorruptSnapshot("CoarseCEH rng");
  }
  rng_.RestoreState(rng_state);
  if (!decoder.GetVarint(&class_count) || class_count > 64) {
    return CorruptSnapshot("CoarseCEH classes");
  }
  if (now_ < 0 || !std::isfinite(max_age_seen_)) {
    return CorruptSnapshot("CoarseCEH clock");
  }
  total_count_ = total;
  std::vector<std::deque<Bucket>> decoded(class_count);
  uint64_t checksum = 0;
  for (size_t c = 0; c < decoded.size(); ++c) {
    auto& cls = decoded[c];
    uint64_t buckets = 0;
    if (!decoder.GetVarint(&buckets) || buckets > 2 * cap_ + 2) {
      return CorruptSnapshot("CoarseCEH class");
    }
    const uint64_t expected = uint64_t{1} << c;
    for (uint64_t i = 0; i < buckets; ++i) {
      Bucket bucket;
      if (!bucket.age.DecodeFrom(decoder) ||
          !decoder.GetVarint(&bucket.count) || bucket.count != expected) {
        return CorruptSnapshot("CoarseCEH bucket");
      }
      checksum += bucket.count;
      cls.push_back(bucket);
    }
  }
  if (options_.layout == HistogramLayout::kFlat) {
    classes_.clear();
    flat_.AssignFromClasses(
        decoded, [](const Bucket& b) { return b.age; },
        [](const Bucket& b) { return b.count; });
  } else {
    classes_ = std::move(decoded);
  }
  if (checksum != total_count_) return CorruptSnapshot("CoarseCEH total");
  // Hostile-snapshot funnel: reject blobs whose state fails the audit.
  const Status audit = AuditInvariants();
  if (!audit.ok()) {
    return Status::InvalidArgument("corrupt snapshot: " + audit.message());
  }
  return Status::OK();
}

size_t CoarseCehDecayedSum::StorageBits() const {
  // Per bucket: an O(log log N) boundary plus a count exponent (counts are
  // powers of two). One exact clock register is charged once.
  const int age_bits =
      ApproxAge::StorageBits(options_.boundary_delta, max_age_seen_);
  const double count_log =
      std::log2(static_cast<double>(std::max<uint64_t>(total_count_, 2)));
  const int exp_bits =
      static_cast<int>(std::ceil(std::log2(count_log + 1.0)));
  const double clock_bits = std::ceil(
      std::log2(static_cast<double>(std::max<Tick>(now_, 2)) + 1.0));
  return static_cast<size_t>(
      static_cast<double>(BucketCount()) * (age_bits + exp_bits) +
      clock_bits);
}

}  // namespace tds
