#include "core/wbmh.h"

#include "util/audit.h"
#include "util/check.h"
#include "util/codec.h"

namespace tds {

WbmhDecayedSum::WbmhDecayedSum(std::shared_ptr<WbmhLayout> layout,
                               const Options& options, bool owns_layout)
    : decay_(layout->decay()),
      layout_(layout),
      counter_(layout,
               WbmhCounter::Options{options.count_epsilon < 0.0
                                        ? options.epsilon
                                        : options.count_epsilon}),
      owns_layout_(owns_layout) {}

StatusOr<std::unique_ptr<WbmhDecayedSum>> WbmhDecayedSum::Create(
    DecayPtr decay, const Options& options) {
  if (decay == nullptr) {
    return Status::InvalidArgument("decay function required");
  }
  if (options.require_admissible && !decay->IsWbmhAdmissible()) {
    return Status::FailedPrecondition(
        "decay function fails the WBMH admissibility test "
        "(g(x)/g(x+1) must be non-increasing); use CEH instead or set "
        "require_admissible = false");
  }
  WbmhLayout::Options layout_options;
  layout_options.decay = std::move(decay);
  layout_options.epsilon = options.epsilon;
  layout_options.start = options.start;
  auto layout = WbmhLayout::Create(layout_options);
  if (!layout.ok()) return layout.status();
  auto shared =
      std::make_shared<WbmhLayout>(std::move(layout).value());
  return std::unique_ptr<WbmhDecayedSum>(
      new WbmhDecayedSum(std::move(shared), options, /*owns_layout=*/true));
}

StatusOr<std::unique_ptr<WbmhDecayedSum>> WbmhDecayedSum::CreateShared(
    std::shared_ptr<WbmhLayout> layout, const Options& options) {
  if (layout == nullptr) {
    return Status::InvalidArgument("shared layout required");
  }
  return std::unique_ptr<WbmhDecayedSum>(
      new WbmhDecayedSum(std::move(layout), options, /*owns_layout=*/false));
}

void WbmhDecayedSum::Update(Tick t, uint64_t value) {
  counter_.Add(t, value);
  if (owns_layout_) layout_->TrimLog(counter_.AppliedSeq());
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void WbmhDecayedSum::UpdateBatch(std::span<const StreamItem> items) {
  counter_.AddBatch(items);
  if (owns_layout_) layout_->TrimLog(counter_.AppliedSeq());
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void WbmhDecayedSum::Advance(Tick now) {
  counter_.Advance(now);
  if (owns_layout_) layout_->TrimLog(counter_.AppliedSeq());
  TDS_AUDIT_MUTATION(AuditInvariants());
}

double WbmhDecayedSum::Query(Tick now) const {
  return counter_.Estimate(now);
}

Status WbmhDecayedSum::AuditInvariants() {
  Status status = layout_->AuditInvariants();
  if (!status.ok()) return status;
  return counter_.AuditInvariants();
}

Status WbmhDecayedSum::EncodeState(Encoder& encoder) {
  if (!owns_layout_) {
    return Status::FailedPrecondition(
        "shared-layout WBMH sums are snapshotted via their layout owner");
  }
  counter_.Sync();
  layout_->TrimLog(counter_.AppliedSeq());
  encoder.PutDouble(layout_->epsilon());
  encoder.PutSigned(layout_->start());
  Status status = layout_->EncodeState(encoder);
  if (!status.ok()) return status;
  status = counter_.EncodeState(encoder);
  // Sync + TrimLog mutate the shared representation even though the
  // logical state is unchanged — audit them like any other mutation.
  if (status.ok()) TDS_AUDIT_MUTATION(AuditInvariants());
  return status;
}

Status WbmhDecayedSum::DecodeState(Decoder& decoder) {
  if (!owns_layout_) {
    return Status::FailedPrecondition(
        "shared-layout WBMH sums are snapshotted via their layout owner");
  }
  double epsilon = 0.0;
  int64_t start = 0;
  if (!decoder.GetDouble(&epsilon) || !decoder.GetSigned(&start)) {
    return CorruptSnapshot("WBMH header");
  }
  if (epsilon != layout_->epsilon() || start != layout_->start()) {
    return Status::InvalidArgument("snapshot options mismatch");
  }
  Status status = layout_->DecodeState(decoder);
  if (!status.ok()) return status;
  status = counter_.DecodeState(decoder);
  if (status.ok()) TDS_AUDIT_MUTATION(AuditInvariants());
  return status;
}

Status WbmhDecayedSum::EncodeCounterState(Encoder& encoder) {
  counter_.Sync();
  const Status status = counter_.EncodeState(encoder);
  if (status.ok()) TDS_AUDIT_MUTATION(counter_.AuditInvariants());
  return status;
}

Status WbmhDecayedSum::DecodeCounterState(Decoder& decoder) {
  const Status status = counter_.DecodeState(decoder);
  if (status.ok()) TDS_AUDIT_MUTATION(counter_.AuditInvariants());
  return status;
}

size_t WbmhDecayedSum::StorageBits() const {
  // Paper accounting: per-stream storage is the bucket counts only — the
  // boundary process is a deterministic function of (g, eps, T) and is
  // never stored per stream (Section 5).
  return counter_.StorageBits();
}

}  // namespace tds
