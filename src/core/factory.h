#ifndef TDS_CORE_FACTORY_H_
#define TDS_CORE_FACTORY_H_

#include <memory>

#include "core/decayed_aggregate.h"
#include "core/decayed_average.h"
#include "util/status.h"

namespace tds {

/// Which maintenance algorithm to use for a decayed sum.
enum class Backend {
  /// Pick the storage-optimal algorithm for the decay family, following the
  /// paper's guidance: EXPD -> single EWMA register (Section 3.1);
  /// SLIWIN -> plain Exponential Histogram (== CEH, Section 4.1);
  /// polyexponential -> pipelined registers (Section 3.4);
  /// WBMH-admissible (POLYD and other smooth sub-exponential decays) ->
  /// WBMH (Section 5); anything else -> CEH (Section 4.2, works for all).
  kAuto,
  kExact,
  kEwma,
  kRecentItems,
  kCeh,
  /// CEH with O(log log N)-bit approximate boundaries (Section 5 closing
  /// remark, after Y. Matias): constant-factor accuracy for POLYD in the
  /// WBMH's storage class.
  kCoarseCeh,
  kWbmh,
  kPolyExp,
};

struct AggregateOptions {
  Backend backend = Backend::kAuto;
  /// Target relative error.
  double epsilon = 0.1;
  /// First tick of the stream (WBMH layout origin).
  Tick start = 1;
};

/// Creates a decayed-sum structure for `decay`.
StatusOr<std::unique_ptr<DecayedAggregate>> MakeDecayedSum(
    DecayPtr decay, const AggregateOptions& options);

/// Creates a decayed average (Problem 2.2) backed by two such structures.
StatusOr<DecayedAverage> MakeDecayedAverage(DecayPtr decay,
                                            const AggregateOptions& options);

}  // namespace tds

#endif  // TDS_CORE_FACTORY_H_
