#ifndef TDS_CORE_FACTORY_H_
#define TDS_CORE_FACTORY_H_

#include <memory>

#include "core/decayed_aggregate.h"
#include "core/decayed_average.h"
#include "util/common.h"
#include "util/status.h"

namespace tds {

/// Which maintenance algorithm to use for a decayed sum.
enum class Backend {
  /// Pick the storage-optimal algorithm for the decay family, following the
  /// paper's guidance: EXPD -> single EWMA register (Section 3.1);
  /// SLIWIN -> plain Exponential Histogram (== CEH, Section 4.1);
  /// polyexponential -> pipelined registers (Section 3.4);
  /// WBMH-admissible (POLYD and other smooth sub-exponential decays) ->
  /// WBMH (Section 5); anything else -> CEH (Section 4.2, works for all).
  kAuto,
  kExact,
  kEwma,
  kRecentItems,
  kCeh,
  /// CEH with O(log log N)-bit approximate boundaries (Section 5 closing
  /// remark, after Y. Matias): constant-factor accuracy for POLYD in the
  /// WBMH's storage class.
  kCoarseCeh,
  kWbmh,
  kPolyExp,
};

/// Resolves kAuto to a concrete backend for `decay` per the paper's
/// guidance (see Backend::kAuto); concrete backends pass through.
Backend ResolveBackend(const DecayFunction& decay, Backend requested);

/// Validated construction options for MakeDecayedSum / MakeDecayedAverage.
/// Instances are immutable and always valid: build them with
/// AggregateOptions::Builder, which rejects bad `epsilon` / `start` with a
/// Status instead of letting them reach a backend.
///
///   auto options = AggregateOptions::Builder()
///                      .backend(Backend::kCeh)
///                      .epsilon(0.05)
///                      .Build();
///   if (!options.ok()) { ... }
///   auto sum = MakeDecayedSum(decay, options.value());
///
/// The default-constructed value carries the defaults (kAuto, eps = 0.1,
/// start = 1), which are valid by construction.
class AggregateOptions {
 public:
  class Builder;

  AggregateOptions() = default;

  Backend backend() const { return backend_; }
  /// Target relative error, in (0, 1].
  double epsilon() const { return epsilon_; }
  /// First tick of the stream (WBMH layout origin), >= 1.
  Tick start() const { return start_; }
  /// Histogram bucket-storage layout for EH-family backends (CEH,
  /// CoarseCEH); other backends ignore it. kFlat and kChain are
  /// bit-identical in every observable way — the flag exists so the two can
  /// be diffed in-process (tests/flat_layout_differential_test.cc).
  HistogramLayout layout() const { return layout_; }

 private:
  Backend backend_ = Backend::kAuto;
  double epsilon_ = 0.1;
  Tick start_ = 1;
  HistogramLayout layout_ = HistogramLayout::kFlat;
};

class AggregateOptions::Builder {
 public:
  Builder() = default;

  Builder& backend(Backend backend) {
    options_.backend_ = backend;
    return *this;
  }
  Builder& epsilon(double epsilon) {
    options_.epsilon_ = epsilon;
    return *this;
  }
  Builder& start(Tick start) {
    options_.start_ = start;
    return *this;
  }
  Builder& layout(HistogramLayout layout) {
    options_.layout_ = layout;
    return *this;
  }

  /// Validates and returns the options: epsilon must be a finite value in
  /// (0, 1] and start >= 1.
  StatusOr<AggregateOptions> Build() const;

 private:
  AggregateOptions options_;
};

/// Deprecated pre-builder options struct, kept for one release so existing
/// field-assignment call sites keep compiling (rename AggregateOptions ->
/// LegacyAggregateOptions). The deprecated MakeDecayedSum overload funnels
/// it through AggregateOptions::Builder, so invalid values now fail with a
/// Status instead of reaching a backend.
struct LegacyAggregateOptions {
  Backend backend = Backend::kAuto;
  double epsilon = 0.1;
  Tick start = 1;
};

/// Creates a decayed-sum structure for `decay`.
StatusOr<std::unique_ptr<DecayedAggregate>> MakeDecayedSum(
    DecayPtr decay, const AggregateOptions& options);

/// Creates a decayed average (Problem 2.2) backed by two such structures.
StatusOr<DecayedAverage> MakeDecayedAverage(DecayPtr decay,
                                            const AggregateOptions& options);

[[deprecated("build options with AggregateOptions::Builder")]]
StatusOr<std::unique_ptr<DecayedAggregate>> MakeDecayedSum(
    DecayPtr decay, const LegacyAggregateOptions& options);

[[deprecated("build options with AggregateOptions::Builder")]]
StatusOr<DecayedAverage> MakeDecayedAverage(
    DecayPtr decay, const LegacyAggregateOptions& options);

}  // namespace tds

#endif  // TDS_CORE_FACTORY_H_
