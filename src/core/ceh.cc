#include "core/ceh.h"

#include <vector>

#include "util/audit.h"
#include "util/check.h"

namespace tds {

CehDecayedSum::CehDecayedSum(DecayPtr decay, ExponentialHistogram eh)
    : decay_(std::move(decay)), eh_(std::move(eh)) {}

StatusOr<std::unique_ptr<CehDecayedSum>> CehDecayedSum::Create(
    DecayPtr decay, const Options& options) {
  if (decay == nullptr) {
    return Status::InvalidArgument("decay function required");
  }
  ExponentialHistogram::Options eh_options;
  eh_options.epsilon = options.epsilon;
  eh_options.window = decay->Horizon();  // N(g); infinite keeps everything
  eh_options.layout = options.layout;
  auto eh = ExponentialHistogram::Create(eh_options);
  if (!eh.ok()) return eh.status();
  return std::unique_ptr<CehDecayedSum>(
      new CehDecayedSum(std::move(decay), std::move(eh).value()));
}

void CehDecayedSum::Update(Tick t, uint64_t value) {
  eh_.Add(t, value);
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void CehDecayedSum::UpdateBatch(std::span<const StreamItem> items) {
  // Coalesce runs of equal ticks into one Add: InsertUnits' sequential-
  // insertion semantics make Add(t, a + b) identical to Add(t, a); Add(t, b),
  // so the cascade fires once per distinct tick, not once per item.
  size_t i = 0;
  while (i < items.size()) {
    const Tick t = items[i].t;
    uint64_t total = 0;
    for (; i < items.size() && items[i].t == t; ++i) total += items[i].value;
    eh_.Add(t, total);
  }
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void CehDecayedSum::Advance(Tick now) {
  eh_.AdvanceTo(now);
  TDS_AUDIT_MUTATION(AuditInvariants());
}

Status CehDecayedSum::DecodeState(Decoder& decoder) {
  Status status = eh_.DecodeState(decoder);
  if (status.ok()) TDS_AUDIT_MUTATION(AuditInvariants());
  return status;
}

Status CehDecayedSum::AuditInvariants() const { return eh_.AuditInvariants(); }

double CehDecayedSum::SafeWeight(Tick age) const {
  if (age < 1) age = 1;
  if (age > decay_->Horizon()) return 0.0;
  return decay_->Weight(age);
}

double CehDecayedSum::Query(Tick now) const {
  if (eh_.Empty()) return 0.0;
  // Walk buckets oldest -> newest; each bucket's trapezoid partner is the
  // end-age of its older neighbor (Eq. 4 telescoped; see class comment).
  // Buckets past the horizon take SafeWeight == 0, so the unswept tail a
  // const query cannot expire contributes nothing.
  double sum = 0.0;
  Tick older_age;  // end-age of the previous (older) bucket
  const Tick first_age = AgeAt(eh_.first_arrival(), now);
  if (decay_->Horizon() != kInfiniteHorizon &&
      first_age > decay_->Horizon()) {
    older_age = decay_->Horizon() + 1;  // oldest items expired: weight 0
  } else {
    older_age = first_age;
  }
  eh_.ForEachBucketOldestFirst([&](const ExponentialHistogram::Bucket& b) {
    const Tick age = AgeAt(b.end, now);
    // Size-1 buckets pin their single item at the stored timestamp, so they
    // take the exact weight; larger buckets take the telescoped trapezoid
    // (the EH's half-count straddling rule summed across window sizes).
    const double w = b.count == 1
                         ? SafeWeight(age)
                         : (SafeWeight(age) + SafeWeight(older_age)) / 2.0;
    sum += static_cast<double>(b.count) * w;
    older_age = age;
  });
  return sum;
}

size_t CehDecayedSum::StorageBits() const { return eh_.StorageBits(); }

}  // namespace tds
