#ifndef TDS_CORE_EWMA_H_
#define TDS_CORE_EWMA_H_

#include <memory>
#include <string>

#include "core/decayed_aggregate.h"
#include "decay/exponential.h"
#include "util/status.h"

namespace tds {

/// The classic single-register algorithm for exponential decay (paper
/// Eq. 1): S <- f(t) + e^{-lambda} * S once per tick, generalized here to
/// jump over idle gaps with one multiply. Under this library's age
/// convention the maintained register R = sum_i f_i e^{-lambda (now - t_i)}
/// and Query returns e^{-lambda} * R.
///
/// With `mantissa_bits > 0` the register is re-rounded after every update,
/// emulating a log(1/eps)-bit significand; together with the exponent field
/// this realizes the Theta(log N) storage bound of Lemma 3.1.
class EwmaCounter : public DecayedAggregate {
 public:
  struct Options {
    /// 0 = native double register; otherwise significand width.
    int mantissa_bits = 0;
  };

  static StatusOr<std::unique_ptr<EwmaCounter>> Create(DecayPtr decay,
                                                       const Options& options);

  void Update(Tick t, uint64_t value) override;
  void UpdateBatch(std::span<const StreamItem> items) override;
  void Advance(Tick now) override;
  double Query(Tick now) const override;
  size_t StorageBits() const override;
  std::string Name() const override { return "EWMA"; }
  const DecayPtr& decay() const override { return decay_; }

  /// Structural invariants: a finite nonnegative register bounded by the
  /// running maximum, clock ordering, and (with mantissa rounding on) the
  /// register being a fixed point of the re-round.
  Status AuditInvariants() const;

  /// Snapshot support.
  void EncodeState(class Encoder& encoder) const;
  Status DecodeState(class Decoder& decoder);

 private:
  EwmaCounter(DecayPtr decay, double lambda, const Options& options);

  void AdvanceTo(Tick t);

  DecayPtr decay_;
  double lambda_;
  int mantissa_bits_;

  double register_ = 0.0;
  double max_register_ = 0.0;
  Tick now_ = 0;
  Tick first_arrival_ = 0;
};

}  // namespace tds

#endif  // TDS_CORE_EWMA_H_
