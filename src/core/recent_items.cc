#include "core/recent_items.h"

#include <cmath>

#include "util/audit.h"
#include "util/check.h"
#include "util/codec.h"

namespace tds {

RecentItemsExpCounter::RecentItemsExpCounter(DecayPtr decay, double lambda,
                                             size_t capacity)
    : decay_(std::move(decay)), lambda_(lambda), capacity_(capacity) {}

StatusOr<std::unique_ptr<RecentItemsExpCounter>> RecentItemsExpCounter::Create(
    DecayPtr decay, const Options& options) {
  const auto* expd = dynamic_cast<const ExponentialDecay*>(decay.get());
  if (expd == nullptr) {
    return Status::InvalidArgument(
        "RecentItemsExpCounter requires ExponentialDecay");
  }
  if (!(options.epsilon > 0.0) || options.epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  const double lambda = expd->lambda();
  const double c = std::ceil(
      std::log(1.0 / ((1.0 - std::exp(-lambda)) * options.epsilon)) / lambda);
  const size_t capacity = static_cast<size_t>(std::max(1.0, c));
  return std::unique_ptr<RecentItemsExpCounter>(
      new RecentItemsExpCounter(decay, lambda, capacity));
}

void RecentItemsExpCounter::Update(Tick t, uint64_t value) {
  TDS_CHECK_GE(t, now_);
  now_ = t;
  if (value == 0) return;
  const double effective =
      static_cast<double>(t) +
      std::log(static_cast<double>(value)) / lambda_;
  effective_times_.insert(effective);
  while (effective_times_.size() > capacity_) {
    effective_times_.erase(effective_times_.begin());  // smallest = oldest
  }
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void RecentItemsExpCounter::Advance(Tick now) {
  TDS_CHECK_GE(now, now_);
  now_ = now;
  TDS_AUDIT_MUTATION(AuditInvariants());
}

Status RecentItemsExpCounter::AuditInvariants() const {
  TDS_AUDIT_CHECK(capacity_ >= 1, "capacity must be positive");
  TDS_AUDIT_CHECK(effective_times_.size() <= capacity_,
                  "retained more than C timestamps");
  for (double effective : effective_times_) {
    TDS_AUDIT_CHECK(std::isfinite(effective),
                    "non-finite effective timestamp");
  }
  return Status::OK();
}

double RecentItemsExpCounter::Query(Tick now) const {
  TDS_CHECK_GE(now, now_);
  double sum = 0.0;
  for (double effective : effective_times_) {
    sum += std::exp(-lambda_ * (static_cast<double>(now) + 1.0 - effective));
  }
  return sum;
}

void RecentItemsExpCounter::EncodeState(Encoder& encoder) const {
  encoder.PutVarint(capacity_);
  encoder.PutSigned(now_);
  encoder.PutVarint(effective_times_.size());
  for (double effective : effective_times_) encoder.PutDouble(effective);
}

Status RecentItemsExpCounter::DecodeState(Decoder& decoder) {
  uint64_t capacity = 0, size = 0;
  if (!decoder.GetVarint(&capacity) || !decoder.GetSigned(&now_) ||
      !decoder.GetVarint(&size)) {
    return CorruptSnapshot("RecentItems header");
  }
  if (capacity == 0) return CorruptSnapshot("RecentItems capacity");
  capacity_ = capacity;
  if (size > capacity) return CorruptSnapshot("RecentItems size");
  effective_times_.clear();
  for (uint64_t i = 0; i < size; ++i) {
    double effective = 0.0;
    if (!decoder.GetDouble(&effective)) {
      return CorruptSnapshot("RecentItems entry");
    }
    effective_times_.insert(effective);
  }
  // Hostile-snapshot funnel: reject blobs whose state fails the audit.
  const Status audit = AuditInvariants();
  if (!audit.ok()) {
    return Status::InvalidArgument("corrupt snapshot: " + audit.message());
  }
  return Status::OK();
}

size_t RecentItemsExpCounter::StorageBits() const {
  // C timestamps of ceil(log2(elapsed)) bits (value shifting adds the same
  // O(log(v_max)/lambda) additive range to each timestamp).
  const double elapsed = std::max<double>(2.0, static_cast<double>(now_));
  const double ts_bits = std::ceil(std::log2(elapsed + 1.0));
  return static_cast<size_t>(
      (static_cast<double>(effective_times_.size()) + 1.0) * ts_bits);
}

}  // namespace tds
