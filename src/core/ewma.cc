#include "core/ewma.h"

#include <cmath>

#include "util/audit.h"
#include "util/check.h"
#include "util/codec.h"
#include "util/rounded_counter.h"

namespace tds {

EwmaCounter::EwmaCounter(DecayPtr decay, double lambda, const Options& options)
    : decay_(std::move(decay)),
      lambda_(lambda),
      mantissa_bits_(options.mantissa_bits) {}

StatusOr<std::unique_ptr<EwmaCounter>> EwmaCounter::Create(
    DecayPtr decay, const Options& options) {
  const auto* expd = dynamic_cast<const ExponentialDecay*>(decay.get());
  if (expd == nullptr) {
    return Status::InvalidArgument("EwmaCounter requires ExponentialDecay");
  }
  if (options.mantissa_bits < 0) {
    return Status::InvalidArgument("mantissa_bits must be >= 0");
  }
  return std::unique_ptr<EwmaCounter>(
      new EwmaCounter(decay, expd->lambda(), options));
}

void EwmaCounter::AdvanceTo(Tick t) {
  TDS_CHECK_GE(t, now_);
  if (t != now_ && register_ != 0.0) {
    register_ *= std::exp(-lambda_ * static_cast<double>(t - now_));
    register_ = RoundedCounter::RoundValue(register_, mantissa_bits_);
  }
  now_ = t;
}

void EwmaCounter::Update(Tick t, uint64_t value) {
  AdvanceTo(t);
  if (value == 0) return;
  if (first_arrival_ == 0) first_arrival_ = t;
  register_ += static_cast<double>(value);
  register_ = RoundedCounter::RoundValue(register_, mantissa_bits_);
  if (register_ > max_register_) max_register_ = register_;
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void EwmaCounter::UpdateBatch(std::span<const StreamItem> items) {
  // Fused same-tick path: one gap-decay multiply per distinct tick instead
  // of one AdvanceTo check per item. The adds stay strictly per-item — each
  // with its own post-add re-round — because (a + b) re-rounded once is not
  // the same double as two rounded adds, and the batch path must be
  // bit-identical to per-item ingestion.
  size_t i = 0;
  while (i < items.size()) {
    const Tick t = items[i].t;
    AdvanceTo(t);
    for (; i < items.size() && items[i].t == t; ++i) {
      if (items[i].value == 0) continue;
      if (first_arrival_ == 0) first_arrival_ = t;
      register_ += static_cast<double>(items[i].value);
      register_ = RoundedCounter::RoundValue(register_, mantissa_bits_);
      if (register_ > max_register_) max_register_ = register_;
    }
  }
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void EwmaCounter::Advance(Tick now) {
  AdvanceTo(now);
  TDS_AUDIT_MUTATION(AuditInvariants());
}

Status EwmaCounter::AuditInvariants() const {
  TDS_AUDIT_CHECK(std::isfinite(register_) && register_ >= 0.0,
                  "register must be finite and nonnegative");
  TDS_AUDIT_CHECK(std::isfinite(max_register_) && max_register_ >= 0.0,
                  "max register must be finite and nonnegative");
  TDS_AUDIT_CHECK(register_ <= max_register_ || register_ == 0.0,
                  "register exceeds its running maximum");
  TDS_AUDIT_CHECK(first_arrival_ >= 0, "negative first arrival");
  TDS_AUDIT_CHECK(first_arrival_ == 0 || first_arrival_ <= now_,
                  "first arrival past the clock");
  if (mantissa_bits_ > 0) {
    TDS_AUDIT_CHECK(
        RoundedCounter::RoundValue(register_, mantissa_bits_) == register_,
        "register not a fixed point of its mantissa rounding");
  }
  return Status::OK();
}

double EwmaCounter::Query(Tick now) const {
  TDS_CHECK_GE(now, now_);
  // Same arithmetic as Advance(now) followed by a read — including the
  // post-decay re-round — but on a local copy of the register.
  double reg = register_;
  if (now != now_ && reg != 0.0) {
    reg *= std::exp(-lambda_ * static_cast<double>(now - now_));
    reg = RoundedCounter::RoundValue(reg, mantissa_bits_);
  }
  return reg * std::exp(-lambda_);
}

void EwmaCounter::EncodeState(Encoder& encoder) const {
  encoder.PutVarint(static_cast<uint64_t>(mantissa_bits_));
  encoder.PutDouble(register_);
  encoder.PutDouble(max_register_);
  encoder.PutSigned(now_);
  encoder.PutSigned(first_arrival_);
}

Status EwmaCounter::DecodeState(Decoder& decoder) {
  uint64_t mantissa = 0;
  if (!decoder.GetVarint(&mantissa) || !decoder.GetDouble(&register_) ||
      !decoder.GetDouble(&max_register_) || !decoder.GetSigned(&now_) ||
      !decoder.GetSigned(&first_arrival_)) {
    return CorruptSnapshot("EWMA state");
  }
  if (static_cast<int>(mantissa) != mantissa_bits_) {
    return Status::InvalidArgument("snapshot options mismatch");
  }
  // Hostile-snapshot funnel: reject blobs whose state fails the audit.
  const Status audit = AuditInvariants();
  if (!audit.ok()) {
    return Status::InvalidArgument("corrupt snapshot: " + audit.message());
  }
  return Status::OK();
}

size_t EwmaCounter::StorageBits() const {
  // Significand plus an exponent wide enough for the register's dynamic
  // range: values shrink by e^{-lambda} per tick, so over N elapsed ticks
  // the exponent spans ~lambda*N/ln2 + log2(max value) binades — the
  // Theta(log N) of Lemma 3.1 comes from storing *which* binade.
  const int significand = mantissa_bits_ > 0 ? mantissa_bits_ : 53;
  const Tick elapsed =
      first_arrival_ == 0 ? 1 : std::max<Tick>(now_ - first_arrival_ + 1, 1);
  const double binades = lambda_ * static_cast<double>(elapsed) / M_LN2 +
                         std::log2(std::max(max_register_, 2.0)) + 2.0;
  return static_cast<size_t>(significand + std::ceil(std::log2(binades)));
}

}  // namespace tds
