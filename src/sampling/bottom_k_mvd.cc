#include "sampling/bottom_k_mvd.h"

#include <algorithm>
#include <vector>

#include "util/audit.h"
#include "util/check.h"

namespace tds {

StatusOr<BottomKMvdList> BottomKMvdList::Create(int k, uint64_t seed) {
  if (k < 2) {
    return Status::InvalidArgument(
        "bottom-k estimator needs k >= 2 ((k-1)/r_k)");
  }
  return BottomKMvdList(k, seed);
}

void BottomKMvdList::Add(Tick t) {
  TDS_CHECK_GE(t, now_);
  now_ = t;
  const double rank = rng_.NextOpenDouble();
  // The new arrival beats every retained item with a larger rank; items
  // beaten k times are no longer in any suffix's bottom-k.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->rank > rank && ++(it->beaten) >= static_cast<uint32_t>(k_)) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  entries_.push_back(Entry{t, rank, 0});
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void BottomKMvdList::ExpireOlderThan(Tick cutoff) {
  while (!entries_.empty() && entries_.front().t < cutoff) {
    entries_.pop_front();
  }
  TDS_AUDIT_MUTATION(AuditInvariants());
}

Status BottomKMvdList::AuditInvariants() const {
  Tick previous_t = 0;
  bool first = true;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    TDS_AUDIT_CHECK(entry.t <= now_, "retained item postdates the clock");
    TDS_AUDIT_CHECK(entry.rank > 0.0 && entry.rank < 1.0,
                    "rank must lie in the open unit interval");
    TDS_AUDIT_CHECK(entry.beaten < static_cast<uint32_t>(k_),
                    "item beaten k times must have been evicted");
    if (!first) {
      TDS_AUDIT_CHECK(entry.t >= previous_t,
                      "retained items must be time-ascending");
    }
    first = false;
    previous_t = entry.t;
    // `beaten` counts *all* later arrivals of smaller rank, so it is at
    // least the number of retained ones.
    uint32_t retained_beats = 0;
    for (size_t j = i + 1; j < entries_.size(); ++j) {
      if (entries_[j].rank < entry.rank) ++retained_beats;
    }
    TDS_AUDIT_CHECK(retained_beats <= entry.beaten,
                    "beaten count below the retained later minima");
  }
  return Status::OK();
}

double BottomKMvdList::EstimateCountSince(Tick cutoff) const {
  std::vector<double> ranks;
  for (const Entry& entry : entries_) {
    if (entry.t >= cutoff) ranks.push_back(entry.rank);
  }
  if (static_cast<int>(ranks.size()) < k_) {
    // Fewer than k retained in a suffix window means the window holds
    // fewer than k items in total — and then it holds all of them.
    return static_cast<double>(ranks.size());
  }
  auto kth = ranks.begin() + (k_ - 1);
  std::nth_element(ranks.begin(), kth, ranks.end());
  return static_cast<double>(k_ - 1) / *kth;
}

}  // namespace tds
