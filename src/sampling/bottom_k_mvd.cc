#include "sampling/bottom_k_mvd.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace tds {

StatusOr<BottomKMvdList> BottomKMvdList::Create(int k, uint64_t seed) {
  if (k < 2) {
    return Status::InvalidArgument(
        "bottom-k estimator needs k >= 2 ((k-1)/r_k)");
  }
  return BottomKMvdList(k, seed);
}

void BottomKMvdList::Add(Tick t) {
  TDS_CHECK_GE(t, now_);
  now_ = t;
  const double rank = rng_.NextOpenDouble();
  // The new arrival beats every retained item with a larger rank; items
  // beaten k times are no longer in any suffix's bottom-k.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->rank > rank && ++(it->beaten) >= static_cast<uint32_t>(k_)) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  entries_.push_back(Entry{t, rank, 0});
}

void BottomKMvdList::ExpireOlderThan(Tick cutoff) {
  while (!entries_.empty() && entries_.front().t < cutoff) {
    entries_.pop_front();
  }
}

double BottomKMvdList::EstimateCountSince(Tick cutoff) const {
  std::vector<double> ranks;
  for (const Entry& entry : entries_) {
    if (entry.t >= cutoff) ranks.push_back(entry.rank);
  }
  if (static_cast<int>(ranks.size()) < k_) {
    // Fewer than k retained in a suffix window means the window holds
    // fewer than k items in total — and then it holds all of them.
    return static_cast<double>(ranks.size());
  }
  auto kth = ranks.begin() + (k_ - 1);
  std::nth_element(ranks.begin(), kth, ranks.end());
  return static_cast<double>(k_ - 1) / *kth;
}

}  // namespace tds
