#ifndef TDS_SAMPLING_BOTTOM_K_MVD_H_
#define TDS_SAMPLING_BOTTOM_K_MVD_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "util/common.h"
#include "util/random.h"
#include "util/status.h"

namespace tds {

/// Bottom-k MV/D list (paper Section 7.2, footnote 4, after Cohen's
/// size-estimation framework): each arriving item draws a uniform rank; an
/// item is retained while fewer than k later items have smaller ranks.
/// The retained set therefore contains, for *every* suffix window, that
/// window's k minimum-rank items; expected size is O(k log n).
///
/// The k-th minimum rank r_k of a window estimates the window's item count
/// as (k-1)/r_k — unbiased for the inverse count under uniform ranks (the
/// classic bottom-k estimator), which is what the paper's footnote needs:
/// EH counts are (1 +- eps) but *biased*, and the decayed-selection
/// reduction wants unbiased counts. Windows holding fewer than k retained
/// items are counted exactly.
class BottomKMvdList {
 public:
  struct Entry {
    Tick t = 0;
    double rank = 0.0;     ///< Uniform (0,1).
    uint32_t beaten = 0;   ///< Number of later items with smaller rank.
  };

  /// k >= 2 (the estimator needs a (k-1)/r_k with k > 1).
  static StatusOr<BottomKMvdList> Create(int k, uint64_t seed);

  /// Records one item (non-decreasing ticks).
  void Add(Tick t);

  /// Drops retained items with t < cutoff.
  void ExpireOlderThan(Tick cutoff);

  /// Estimated number of items with t >= cutoff: exact while fewer than k
  /// retained items are in range, else (k-1)/r_k.
  double EstimateCountSince(Tick cutoff) const;

  int k() const { return k_; }
  size_t Size() const { return entries_.size(); }
  const std::deque<Entry>& entries() const { return entries_; }

  /// Verifies the bottom-k retention invariants (see util/audit.h): entries
  /// time-ascending with ranks in (0, 1), every beaten count below k, and
  /// each retained item beaten by at least every *retained* later item of
  /// smaller rank.
  Status AuditInvariants() const;

 private:
  BottomKMvdList(int k, uint64_t seed) : k_(k), rng_(seed) {}

  int k_;
  Rng rng_;
  /// Time-ascending retained entries.
  std::deque<Entry> entries_;
  Tick now_ = 0;
};

}  // namespace tds

#endif  // TDS_SAMPLING_BOTTOM_K_MVD_H_
