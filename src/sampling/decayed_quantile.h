#ifndef TDS_SAMPLING_DECAYED_QUANTILE_H_
#define TDS_SAMPLING_DECAYED_QUANTILE_H_

#include <optional>
#include <vector>

#include "sampling/decayed_sampler.h"
#include "util/status.h"

namespace tds {

/// Time-decaying approximate quantiles (paper Section 7.2): k independent
/// decayed random selections (each with its own MV/D ranks) give k values
/// distributed by the g-weighted item distribution; the empirical q-th
/// order statistic is, with high probability, a [q +- O(1/sqrt(k)) + eps]
/// quantile. The paper's "folklore" median trick is QueryMedian.
class DecayedQuantile {
 public:
  struct Options {
    int copies = 33;  ///< k: number of independent samplers (odd is best).
    double epsilon = 0.05;
    uint64_t seed = 7;
  };

  static StatusOr<DecayedQuantile> Create(DecayPtr decay,
                                          const Options& options);

  /// Records item (t, value) into every copy.
  void Add(Tick t, double value);

  /// Approximate q-quantile (q in [0,1]) of the decayed value
  /// distribution. nullopt when no items carry weight.
  std::optional<double> Query(Tick now, double q, Rng& rng);

  std::optional<double> QueryMedian(Tick now, Rng& rng) {
    return Query(now, 0.5, rng);
  }

  size_t StorageBits() const;

 private:
  explicit DecayedQuantile(std::vector<DecayedSampler> samplers)
      : samplers_(std::move(samplers)) {}

  std::vector<DecayedSampler> samplers_;
};

}  // namespace tds

#endif  // TDS_SAMPLING_DECAYED_QUANTILE_H_
