#include "sampling/decayed_quantile.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace tds {

StatusOr<DecayedQuantile> DecayedQuantile::Create(DecayPtr decay,
                                                  const Options& options) {
  if (options.copies < 1) {
    return Status::InvalidArgument("copies must be >= 1");
  }
  std::vector<DecayedSampler> samplers;
  samplers.reserve(options.copies);
  for (int i = 0; i < options.copies; ++i) {
    DecayedSampler::Options sampler_options;
    sampler_options.epsilon = options.epsilon;
    sampler_options.seed = HashCombine(options.seed, static_cast<uint64_t>(i));
    auto sampler = DecayedSampler::Create(decay, sampler_options);
    if (!sampler.ok()) return sampler.status();
    samplers.push_back(std::move(sampler).value());
  }
  return DecayedQuantile(std::move(samplers));
}

void DecayedQuantile::Add(Tick t, double value) {
  for (DecayedSampler& sampler : samplers_) sampler.Add(t, value);
}

std::optional<double> DecayedQuantile::Query(Tick now, double q, Rng& rng) {
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> values;
  values.reserve(samplers_.size());
  for (DecayedSampler& sampler : samplers_) {
    auto entry = sampler.Sample(now, rng);
    if (entry.has_value()) values.push_back(entry->value);
  }
  if (values.empty()) return std::nullopt;
  const size_t index = std::min(
      values.size() - 1,
      static_cast<size_t>(q * static_cast<double>(values.size() - 1) + 0.5));
  std::nth_element(values.begin(), values.begin() + index, values.end());
  return values[index];
}

size_t DecayedQuantile::StorageBits() const {
  size_t bits = 0;
  for (const DecayedSampler& sampler : samplers_) bits += sampler.StorageBits();
  return bits;
}

}  // namespace tds
