#include "sampling/mvd_list.h"

#include <algorithm>

#include "util/check.h"

namespace tds {

void MvdList::Add(Tick t, double value) {
  TDS_CHECK_GE(t, now_);
  now_ = t;
  const uint64_t rank = rng_.Next();
  // The new item is the most recent, so it is retained iff nothing after it
  // beats it — trivially true; retained predecessors with larger ranks are
  // no longer suffix minima.
  while (!entries_.empty() && entries_.back().rank >= rank) {
    entries_.pop_back();
  }
  entries_.push_back(Entry{t, value, rank});
}

void MvdList::ExpireOlderThan(Tick cutoff) {
  while (!entries_.empty() && entries_.front().t < cutoff) {
    entries_.pop_front();
  }
}

std::optional<MvdList::Entry> MvdList::MinRankSince(Tick cutoff) const {
  // Entries are time-ascending with rank ascending: the earliest retained
  // item in the window has the window's minimum rank.
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), cutoff,
      [](const Entry& e, Tick value) { return e.t < value; });
  if (it == entries_.end()) return std::nullopt;
  return *it;
}

}  // namespace tds
