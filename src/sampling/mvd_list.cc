#include "sampling/mvd_list.h"

#include <algorithm>

#include "util/audit.h"
#include "util/check.h"

namespace tds {

void MvdList::Add(Tick t, double value) {
  TDS_CHECK_GE(t, now_);
  now_ = t;
  const uint64_t rank = rng_.Next();
  // The new item is the most recent, so it is retained iff nothing after it
  // beats it — trivially true; retained predecessors with larger ranks are
  // no longer suffix minima.
  while (!entries_.empty() && entries_.back().rank >= rank) {
    entries_.pop_back();
  }
  entries_.push_back(Entry{t, value, rank});
  TDS_AUDIT_MUTATION(AuditInvariants());
}

void MvdList::ExpireOlderThan(Tick cutoff) {
  while (!entries_.empty() && entries_.front().t < cutoff) {
    entries_.pop_front();
  }
  TDS_AUDIT_MUTATION(AuditInvariants());
}

Status MvdList::AuditInvariants() const {
  bool first = true;
  Tick previous_t = 0;
  uint64_t previous_rank = 0;
  for (const Entry& entry : entries_) {
    TDS_AUDIT_CHECK(entry.t <= now_, "retained item postdates the clock");
    if (!first) {
      TDS_AUDIT_CHECK(entry.t >= previous_t,
                      "retained items must be time-ascending");
      // Strict: equal ranks mean the older item was not a suffix minimum.
      TDS_AUDIT_CHECK(entry.rank > previous_rank,
                      "suffix-minima ranks must be strictly increasing");
    }
    first = false;
    previous_t = entry.t;
    previous_rank = entry.rank;
  }
  return Status::OK();
}

std::optional<MvdList::Entry> MvdList::MinRankSince(Tick cutoff) const {
  // Entries are time-ascending with rank ascending: the earliest retained
  // item in the window has the window's minimum rank.
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), cutoff,
      [](const Entry& e, Tick value) { return e.t < value; });
  if (it == entries_.end()) return std::nullopt;
  return *it;
}

}  // namespace tds
