#ifndef TDS_SAMPLING_MVD_LIST_H_
#define TDS_SAMPLING_MVD_LIST_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "util/common.h"
#include "util/random.h"
#include "util/status.h"

namespace tds {

/// MV/D list (paper Section 7.2, after Cohen's size-estimation framework):
/// every arriving item draws a uniform random rank, and an item is retained
/// iff its rank is the minimum among all items that arrived at or after it.
/// The retained items form a time-ordered list with strictly increasing
/// ranks, of expected size O(log n); for any suffix window the first
/// retained item inside the window is the minimum-rank item of the whole
/// window — a uniform random selection from it.
class MvdList {
 public:
  struct Entry {
    Tick t = 0;
    double value = 0.0;
    uint64_t rank = 0;
  };

  explicit MvdList(uint64_t seed) : rng_(seed) {}

  /// Adds an item (ticks must be non-decreasing).
  void Add(Tick t, double value);

  /// Drops retained items with t < cutoff (horizon expiry).
  void ExpireOlderThan(Tick cutoff);

  /// Minimum-rank item among items with t >= cutoff: a uniform random
  /// selection from that window. nullopt if the window is empty of
  /// retained items.
  std::optional<Entry> MinRankSince(Tick cutoff) const;

  size_t Size() const { return entries_.size(); }
  const std::deque<Entry>& entries() const { return entries_; }

  /// Verifies the suffix-minima invariants (see util/audit.h): entries are
  /// time-ascending (ties allowed within a tick) with *strictly* increasing
  /// ranks, and no entry postdates the clock.
  Status AuditInvariants() const;

 private:
  Rng rng_;
  /// Time-ascending, rank-ascending (suffix minima).
  std::deque<Entry> entries_;
  Tick now_ = 0;
};

}  // namespace tds

#endif  // TDS_SAMPLING_MVD_LIST_H_
