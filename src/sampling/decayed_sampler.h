#ifndef TDS_SAMPLING_DECAYED_SAMPLER_H_
#define TDS_SAMPLING_DECAYED_SAMPLER_H_

#include <optional>

#include "decay/decay_function.h"
#include "histogram/exponential_histogram.h"
#include "sampling/bottom_k_mvd.h"
#include "sampling/mvd_list.h"
#include "util/random.h"
#include "util/status.h"

namespace tds {

/// Time-decaying random selection (paper Section 7.2): draws an item i with
/// probability approximately proportional to g(age_i), by the paper's
/// reduction to uniform window selection plus decaying counts:
///
///   g(age) = sum_{w >= age} (g(w) - g(w+1)),   so
///   P(i) ∝ g(age_i)  ==  choose window w with P(w) ∝ (g(w)-g(w+1))*C(w),
///                        then select uniformly from window w.
///
/// C(w) comes from an Exponential Histogram (piecewise constant across
/// bucket boundaries, which also makes the window draw O(log n)); uniform
/// in-window selection comes from the MV/D list. The EH estimates carry the
/// usual (1 +- eps) bias — the paper obtains unbiased counts with a second
/// MV/D list; we quantify the residual bias empirically in the sampling
/// benchmark.
class DecayedSampler {
 public:
  struct Options {
    /// Count-estimate accuracy (drives the EH).
    double epsilon = 0.05;
    uint64_t seed = 1;
    /// When >= 2, window counts come from a bottom-k MV/D list instead of
    /// the (biased) EH — the paper's footnote 4 unbiased-count fix. The EH
    /// still provides the segment boundaries.
    int unbiased_count_k = 0;
  };

  static StatusOr<DecayedSampler> Create(DecayPtr decay,
                                         const Options& options);

  /// Records item (t, value). Ticks non-decreasing.
  void Add(Tick t, double value);

  /// Draws one item with probability ~ proportional to its current decayed
  /// weight. nullopt when nothing retains positive weight.
  std::optional<MvdList::Entry> Sample(Tick now, Rng& rng);

  /// Number of retained MV/D entries (expected O(log n)).
  size_t RetainedItems() const { return mvd_.Size(); }

  size_t StorageBits() const;
  const DecayPtr& decay() const { return decay_; }

 private:
  DecayedSampler(DecayPtr decay, ExponentialHistogram eh,
                 const Options& options);

  /// g clamped to 0 past the horizon; age clamped to >= 1.
  double SafeWeight(Tick age) const;

  /// Window count with the configured estimator (cutoff = now - w + 1).
  double CountSince(Tick cutoff) const;

  DecayPtr decay_;
  ExponentialHistogram counts_;
  MvdList mvd_;
  std::optional<BottomKMvdList> unbiased_counts_;
  Tick now_ = 0;
};

}  // namespace tds

#endif  // TDS_SAMPLING_DECAYED_SAMPLER_H_
