#include "sampling/decayed_sampler.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace tds {

DecayedSampler::DecayedSampler(DecayPtr decay, ExponentialHistogram eh,
                               const Options& options)
    : decay_(std::move(decay)),
      counts_(std::move(eh)),
      mvd_(options.seed) {
  if (options.unbiased_count_k >= 2) {
    unbiased_counts_ = std::move(BottomKMvdList::Create(
                                     options.unbiased_count_k,
                                     HashCombine(options.seed, 0xb0770317)))
                           .value();
  }
}

StatusOr<DecayedSampler> DecayedSampler::Create(DecayPtr decay,
                                                const Options& options) {
  if (decay == nullptr) {
    return Status::InvalidArgument("decay function required");
  }
  ExponentialHistogram::Options eh_options;
  eh_options.epsilon = options.epsilon;
  eh_options.window = decay->Horizon();
  if (options.unbiased_count_k == 1) {
    return Status::InvalidArgument("unbiased_count_k must be 0 or >= 2");
  }
  auto eh = ExponentialHistogram::Create(eh_options);
  if (!eh.ok()) return eh.status();
  return DecayedSampler(std::move(decay), std::move(eh).value(), options);
}

double DecayedSampler::SafeWeight(Tick age) const {
  if (age < 1) age = 1;
  if (age > decay_->Horizon()) return 0.0;
  return decay_->Weight(age);
}

void DecayedSampler::Add(Tick t, double value) {
  TDS_CHECK_GE(t, now_);
  now_ = t;
  counts_.Add(t, 1);
  mvd_.Add(t, value);
  if (unbiased_counts_.has_value()) unbiased_counts_->Add(t);
  if (decay_->Horizon() != kInfiniteHorizon) {
    const Tick cutoff = t - decay_->Horizon() + 1;
    mvd_.ExpireOlderThan(cutoff);
    if (unbiased_counts_.has_value()) {
      unbiased_counts_->ExpireOlderThan(cutoff);
    }
  }
}

double DecayedSampler::CountSince(Tick cutoff) const {
  if (unbiased_counts_.has_value()) {
    return unbiased_counts_->EstimateCountSince(cutoff);
  }
  return counts_.EstimateWindow(counts_.now() - cutoff + 1);
}

std::optional<MvdList::Entry> DecayedSampler::Sample(Tick now, Rng& rng) {
  TDS_CHECK_GE(now, now_);
  now_ = now;
  counts_.AdvanceTo(now);
  if (decay_->Horizon() != kInfiniteHorizon) {
    mvd_.ExpireOlderThan(now - decay_->Horizon() + 1);
  }
  if (mvd_.Size() == 0 || counts_.Empty()) return std::nullopt;

  // Bucket end ages, newest first: segments of constant estimated count.
  std::vector<Tick> ages;
  counts_.ForEachBucketOldestFirst([&](const ExponentialHistogram::Bucket& b) {
    ages.push_back(AgeAt(b.end, now));
  });
  std::reverse(ages.begin(), ages.end());  // ascending ages

  // Oldest age that adds items: everything is included by then.
  Tick full_age = AgeAt(counts_.first_arrival(), now);
  if (decay_->Horizon() != kInfiniteHorizon) {
    full_age = std::min(full_age, decay_->Horizon());
  }

  struct Segment {
    Tick lo, hi;     // window sizes covered; hi == kInfiniteHorizon => lump
    double count;    // estimated count of windows in the segment
    double weight;   // (g(lo) - g(hi+1)) * count
  };
  std::vector<Segment> segments;
  double total_weight = 0.0;
  for (size_t j = 0; j < ages.size(); ++j) {
    const Tick lo = ages[j];
    const Tick hi = j + 1 < ages.size()
                        ? std::min(ages[j + 1] - 1, full_age)
                        : full_age;
    if (hi < lo) continue;
    const double count = CountSince(now - lo + 1);
    const double weight = (SafeWeight(lo) - SafeWeight(hi + 1)) * count;
    if (weight > 0.0) {
      segments.push_back(Segment{lo, hi, count, weight});
      total_weight += weight;
    }
  }
  // Tail lump: windows larger than full_age all select from everything.
  const double tail_weight =
      SafeWeight(full_age + 1) * CountSince(now - full_age + 1);
  if (tail_weight > 0.0) {
    segments.push_back(
        Segment{full_age, kInfiniteHorizon, 0.0, tail_weight});
    total_weight += tail_weight;
  }
  if (segments.empty() || total_weight <= 0.0) return std::nullopt;

  // Stage 1: categorical draw over segments.
  double target = rng.NextDouble() * total_weight;
  const Segment* chosen = &segments.back();
  for (const Segment& s : segments) {
    if (target < s.weight) {
      chosen = &s;
      break;
    }
    target -= s.weight;
  }

  // Stage 2: window size within the segment, P(w) ∝ g(w) - g(w+1),
  // via inverse-CDF binary search on the monotone decay.
  Tick w;
  if (chosen->hi == kInfiniteHorizon) {
    w = full_age;  // lump: full-window selection
  } else {
    const double g_lo = SafeWeight(chosen->lo);
    const double g_hi = SafeWeight(chosen->hi + 1);
    const double u = g_lo - rng.NextDouble() * (g_lo - g_hi);
    Tick lo = chosen->lo, hi = chosen->hi;
    // Smallest w in [lo, hi] with g(w+1) <= u.
    while (lo < hi) {
      const Tick mid = lo + (hi - lo) / 2;
      if (SafeWeight(mid + 1) <= u) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    w = lo;
  }

  // Stage 3: uniform selection from the window via the MV/D list.
  auto entry = mvd_.MinRankSince(now - w + 1);
  if (!entry.has_value()) {
    // Estimated counts can place weight on empty windows; fall back to the
    // full window, which is nonempty here.
    entry = mvd_.MinRankSince(now - full_age + 1);
  }
  return entry;
}

size_t DecayedSampler::StorageBits() const {
  const double ts_bits = std::ceil(
      std::log2(static_cast<double>(std::max<Tick>(now_, 2)) + 1.0));
  // Each MV/D entry: timestamp + rank (64) + value (64).
  return counts_.StorageBits() +
         static_cast<size_t>(static_cast<double>(mvd_.Size()) *
                             (ts_bits + 128.0));
}

}  // namespace tds
