#ifndef TDS_MOMENTS_DECAYED_VARIANCE_H_
#define TDS_MOMENTS_DECAYED_VARIANCE_H_

#include <memory>

#include "core/factory.h"
#include "util/status.h"

namespace tds {

/// Time-decaying variance (paper Section 7.3):
///   V_g(T) = sum_i g(age_i) (f_i - A_g(T))^2
///          = S_g(f^2) - S_g(f)^2 / C_g,
/// maintained from three decayed aggregates (second moment, first moment,
/// weight mass) over the same decay — each by any backend. This is the
/// algebraic counterpart of the paper's reduction of decayed moments to a
/// small number of decayed counts; the substitution is documented in
/// DESIGN.md. Relative accuracy degrades when V << A^2 (catastrophic
/// cancellation), which the variance benchmark quantifies.
class DecayedVariance {
 public:
  static StatusOr<DecayedVariance> Create(DecayPtr decay,
                                          const AggregateOptions& options);

  /// Records one observation `value` at tick t.
  void Observe(Tick t, uint64_t value);

  /// Unnormalized decayed variance V_g (the paper's definition).
  double QueryVg(Tick now);

  /// Weighted population variance V_g / C_g.
  double QueryVariance(Tick now);

  /// Decayed average A_g.
  double QueryMean(Tick now);

  size_t StorageBits() const;

 private:
  DecayedVariance(std::unique_ptr<DecayedAggregate> second,
                  std::unique_ptr<DecayedAggregate> first,
                  std::unique_ptr<DecayedAggregate> mass)
      : second_(std::move(second)),
        first_(std::move(first)),
        mass_(std::move(mass)) {}

  std::unique_ptr<DecayedAggregate> second_;
  std::unique_ptr<DecayedAggregate> first_;
  std::unique_ptr<DecayedAggregate> mass_;
};

}  // namespace tds

#endif  // TDS_MOMENTS_DECAYED_VARIANCE_H_
