#ifndef TDS_MOMENTS_WINDOW_VARIANCE_H_
#define TDS_MOMENTS_WINDOW_VARIANCE_H_

#include <cstdint>
#include <deque>

#include "util/codec.h"
#include "util/common.h"
#include "util/status.h"

namespace tds {

/// Sliding-window variance histogram, after Babcock, Babu, Datar, Motwani &
/// O'Callaghan (the "[1]" the paper's Section 7.3 builds on): buckets carry
/// the sufficient statistics (count n, mean, sum of squared deviations V)
/// and are merged exponential-histogram-style — two adjacent old buckets
/// combine (via the parallel-axis rule
///   V = V_a + V_b + n_a n_b (mean_a - mean_b)^2 / (n_a + n_b))
/// whenever the combined V stays below a theta * suffix-V budget, which
/// keeps the oldest bucket's contribution a small fraction of the total.
/// As the paper notes for the EH, the same structure answers the variance
/// of *every* window w <= W (QueryWindow).
///
/// The straddling oldest bucket is estimated as half its count at its
/// stored mean with half its V — the source of the controlled error. The
/// moments benchmark compares this structure against the paper's
/// three-decayed-sums reduction under sliding-window decay.
class SlidingWindowVariance {
 public:
  struct Options {
    /// Target relative error for the variance estimate.
    double epsilon = 0.1;
    /// Window size W; kInfiniteHorizon keeps everything (whole-stream
    /// variance with all-prefix queries).
    Tick window = kInfiniteHorizon;
  };

  struct Bucket {
    Tick end = 0;     ///< Arrival tick of the bucket's most recent item.
    double n = 0.0;   ///< Item count.
    double mean = 0.0;
    double v = 0.0;   ///< Sum of squared deviations from the bucket mean.
  };

  static StatusOr<SlidingWindowVariance> Create(const Options& options);

  /// Records one observation `value` at tick t (non-decreasing ticks).
  void Observe(Tick t, double value);

  /// Advances the clock, expiring buckets.
  void AdvanceTo(Tick t);

  /// Population variance over the full window.
  double Variance() const { return VarianceWindow(options_.window); }

  /// Population variance over the window of size w <= W ending at now().
  double VarianceWindow(Tick w) const;

  /// Mean over the window of size w.
  double MeanWindow(Tick w) const;

  /// Estimated item count over the window of size w.
  double CountWindow(Tick w) const;

  size_t BucketCount() const { return buckets_.size(); }
  Tick now() const { return now_; }

  /// Bit accounting: per bucket a timestamp plus three statistic registers
  /// (fixed significand), plus the clock.
  size_t StorageBits() const;

  /// Snapshot support.
  void EncodeState(Encoder& encoder) const;
  Status DecodeState(Decoder& decoder);

 private:
  explicit SlidingWindowVariance(const Options& options);

  /// Combines b into a (a older), parallel-axis rule.
  static Bucket Combine(const Bucket& a, const Bucket& b);

  /// Re-establishes the merge invariant after inserts/expiry.
  void Canonicalize();

  void Expire();

  Options options_;
  double theta_;  ///< Merge budget factor derived from epsilon.

  std::deque<Bucket> buckets_;  ///< Oldest at the front.
  Tick now_ = 0;
  Tick first_arrival_ = 0;
};

}  // namespace tds

#endif  // TDS_MOMENTS_WINDOW_VARIANCE_H_
