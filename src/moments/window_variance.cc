#include "moments/window_variance.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace tds {

SlidingWindowVariance::SlidingWindowVariance(const Options& options)
    : options_(options) {
  // Babcock et al.'s merge budget: a bucket may hold at most ~eps^2/9 of
  // the suffix's squared-deviation mass, so the straddling bucket's
  // contribution stays an O(eps) fraction of the estimate.
  theta_ = options.epsilon * options.epsilon / 9.0;
}

StatusOr<SlidingWindowVariance> SlidingWindowVariance::Create(
    const Options& options) {
  if (!(options.epsilon > 0.0) || options.epsilon > 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1]");
  }
  if (options.window < 1) {
    return Status::InvalidArgument("window must be >= 1");
  }
  return SlidingWindowVariance(options);
}

SlidingWindowVariance::Bucket SlidingWindowVariance::Combine(const Bucket& a,
                                                             const Bucket& b) {
  Bucket out;
  out.end = std::max(a.end, b.end);
  out.n = a.n + b.n;
  if (out.n <= 0.0) return out;
  out.mean = (a.n * a.mean + b.n * b.mean) / out.n;
  const double shift = a.mean - b.mean;
  out.v = a.v + b.v + a.n * b.n * shift * shift / out.n;
  return out;
}

void SlidingWindowVariance::Observe(Tick t, double value) {
  TDS_CHECK_GE(t, now_);
  now_ = t;
  if (first_arrival_ == 0) first_arrival_ = t;
  if (!buckets_.empty() && buckets_.back().end == t) {
    // Same-tick items accumulate in one bucket (they expire together).
    buckets_.back() = Combine(buckets_.back(), Bucket{t, 1.0, value, 0.0});
  } else {
    buckets_.push_back(Bucket{t, 1.0, value, 0.0});
  }
  Expire();
  Canonicalize();
}

void SlidingWindowVariance::AdvanceTo(Tick t) {
  TDS_CHECK_GE(t, now_);
  now_ = t;
  Expire();
}

void SlidingWindowVariance::Expire() {
  if (options_.window == kInfiniteHorizon) return;
  const Tick cutoff = now_ - options_.window + 1;
  while (!buckets_.empty() && buckets_.front().end < cutoff) {
    buckets_.pop_front();
  }
}

void SlidingWindowVariance::Canonicalize() {
  // Suffix squared-deviation mass, newest -> oldest; suffix_v[i] is the V
  // of everything strictly newer than bucket i.
  const size_t count = buckets_.size();
  if (count < 3) return;
  std::vector<double> newer_v(count, 0.0);
  Bucket suffix;  // combination of buckets (i+1 .. count-1)
  bool have_suffix = false;
  for (size_t i = count; i-- > 0;) {
    newer_v[i] = have_suffix ? suffix.v : 0.0;
    suffix = have_suffix ? Combine(buckets_[i], suffix) : buckets_[i];
    have_suffix = true;
  }
  // One oldest-first merge pass per insert keeps the structure canonical
  // (amortized like the EH: each item participates in O(log) merges).
  std::deque<Bucket> merged;
  size_t i = 0;
  while (i < count) {
    if (i + 2 < count) {  // never merge into the newest bucket
      const Bucket candidate = Combine(buckets_[i], buckets_[i + 1]);
      if (candidate.v <= theta_ * newer_v[i + 1]) {
        merged.push_back(candidate);
        i += 2;
        continue;
      }
    }
    merged.push_back(buckets_[i]);
    ++i;
  }
  buckets_ = std::move(merged);
}

double SlidingWindowVariance::CountWindow(Tick w) const {
  TDS_CHECK_GE(w, 1);
  // Clamp to elapsed time so kInfiniteHorizon windows do not wrap.
  if (w > now_) w = std::max<Tick>(now_, 1);
  const Tick cutoff = now_ - w + 1;
  double n = 0.0;
  bool straddler = true;
  for (const Bucket& b : buckets_) {
    if (b.end < cutoff) continue;
    if (straddler) {
      straddler = false;
      n += first_arrival_ >= cutoff ? b.n : b.n / 2.0;
    } else {
      n += b.n;
    }
  }
  return n;
}

double SlidingWindowVariance::VarianceWindow(Tick w) const {
  TDS_CHECK_GE(w, 1);
  // Clamp to elapsed time so kInfiniteHorizon windows do not wrap.
  if (w > now_) w = std::max<Tick>(now_, 1);
  const Tick cutoff = now_ - w + 1;
  Bucket combined;
  bool any = false;
  bool oldest_kept = true;
  for (const Bucket& b : buckets_) {
    if (b.end < cutoff) continue;
    Bucket piece = b;
    if (oldest_kept) {
      oldest_kept = false;
      if (first_arrival_ < cutoff) {
        // Straddler: estimate the surviving half at the stored mean with
        // half the deviation mass (Babcock et al.'s estimator).
        piece.n = b.n / 2.0;
        piece.v = b.v / 2.0;
      }
    }
    combined = any ? Combine(combined, piece) : piece;
    any = true;
  }
  if (!any || combined.n <= 1.0) return 0.0;
  return combined.v / combined.n;
}

double SlidingWindowVariance::MeanWindow(Tick w) const {
  TDS_CHECK_GE(w, 1);
  // Clamp to elapsed time so kInfiniteHorizon windows do not wrap.
  if (w > now_) w = std::max<Tick>(now_, 1);
  const Tick cutoff = now_ - w + 1;
  Bucket combined;
  bool any = false;
  bool oldest_kept = true;
  for (const Bucket& b : buckets_) {
    if (b.end < cutoff) continue;
    Bucket piece = b;
    if (oldest_kept) {
      oldest_kept = false;
      if (first_arrival_ < cutoff) {
        piece.n = b.n / 2.0;
        piece.v = b.v / 2.0;
      }
    }
    combined = any ? Combine(combined, piece) : piece;
    any = true;
  }
  return any ? combined.mean : 0.0;
}

size_t SlidingWindowVariance::StorageBits() const {
  const Tick elapsed =
      first_arrival_ == 0 ? 1 : std::max<Tick>(now_ - first_arrival_ + 1, 2);
  const Tick n_eff = options_.window == kInfiniteHorizon
                         ? elapsed
                         : std::min(elapsed, options_.window);
  const double ts_bits =
      std::ceil(std::log2(static_cast<double>(n_eff) + 1.0));
  // Three statistics per bucket at a 32-bit-significand budget each.
  return static_cast<size_t>(static_cast<double>(buckets_.size()) *
                                 (ts_bits + 3.0 * 32.0) +
                             ts_bits);
}

void SlidingWindowVariance::EncodeState(Encoder& encoder) const {
  encoder.PutDouble(options_.epsilon);
  encoder.PutSigned(options_.window);
  encoder.PutSigned(now_);
  encoder.PutSigned(first_arrival_);
  encoder.PutVarint(buckets_.size());
  for (const Bucket& b : buckets_) {
    encoder.PutSigned(b.end);
    encoder.PutDouble(b.n);
    encoder.PutDouble(b.mean);
    encoder.PutDouble(b.v);
  }
}

Status SlidingWindowVariance::DecodeState(Decoder& decoder) {
  double epsilon = 0.0;
  int64_t window = 0;
  uint64_t count = 0;
  if (!decoder.GetDouble(&epsilon) || !decoder.GetSigned(&window) ||
      !decoder.GetSigned(&now_) || !decoder.GetSigned(&first_arrival_) ||
      !decoder.GetVarint(&count)) {
    return CorruptSnapshot("window variance header");
  }
  if (epsilon != options_.epsilon || window != options_.window) {
    return Status::InvalidArgument("snapshot options mismatch");
  }
  buckets_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    Bucket b;
    if (!decoder.GetSigned(&b.end) || !decoder.GetDouble(&b.n) ||
        !decoder.GetDouble(&b.mean) || !decoder.GetDouble(&b.v)) {
      return CorruptSnapshot("window variance bucket");
    }
    buckets_.push_back(b);
  }
  return Status::OK();
}

}  // namespace tds
