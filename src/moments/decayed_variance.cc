#include "moments/decayed_variance.h"

#include <algorithm>

namespace tds {

StatusOr<DecayedVariance> DecayedVariance::Create(
    DecayPtr decay, const AggregateOptions& options) {
  auto second = MakeDecayedSum(decay, options);
  if (!second.ok()) return second.status();
  auto first = MakeDecayedSum(decay, options);
  if (!first.ok()) return first.status();
  auto mass = MakeDecayedSum(decay, options);
  if (!mass.ok()) return mass.status();
  return DecayedVariance(std::move(second).value(), std::move(first).value(),
                         std::move(mass).value());
}

void DecayedVariance::Observe(Tick t, uint64_t value) {
  second_->Update(t, value * value);
  first_->Update(t, value);
  mass_->Update(t, 1);
}

double DecayedVariance::QueryVg(Tick now) {
  const double mass = mass_->Query(now);
  if (mass <= 0.0) return 0.0;
  const double s1 = first_->Query(now);
  const double s2 = second_->Query(now);
  return std::max(0.0, s2 - s1 * s1 / mass);
}

double DecayedVariance::QueryVariance(Tick now) {
  const double mass = mass_->Query(now);
  if (mass <= 0.0) return 0.0;
  return QueryVg(now) / mass;
}

double DecayedVariance::QueryMean(Tick now) {
  const double mass = mass_->Query(now);
  if (mass <= 0.0) return 0.0;
  return first_->Query(now) / mass;
}

size_t DecayedVariance::StorageBits() const {
  return second_->StorageBits() + first_->StorageBits() +
         mass_->StorageBits();
}

}  // namespace tds
