#ifndef TDS_UTIL_FAILPOINT_H_
#define TDS_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

/// Deterministic fault injection (docs/CORRECTNESS.md, "Failpoints").
///
/// A failpoint is a named site in fallible code — codec funnels, registry
/// merges, queue pushes — that a test can *arm* to fail on demand:
///
///   // production code (src/engine/registry.cc):
///   TDS_FAILPOINT_RETURN("registry.decode");
///
///   // test:
///   failpoint::ArmNthHit("registry.decode", 3);   // fail the 3rd decode
///   ...
///   failpoint::DisarmAll();
///
/// Sites compile to live checks only under -DTDS_FAILPOINTS=ON (cmake
/// option TDS_FAILPOINTS, used by the `faults` stage of tools/check.sh);
/// in a normal build TDS_FAILPOINT(name) is the constant `false` and the
/// whole site folds away. Firing decisions are deterministic: the
/// probability mode draws HashCombine(seed, hit_index), the same
/// counter-based scheme as the fuzz drivers, so any failure replays from
/// its (seed, hit) pair.
namespace tds {

/// True when this build compiled failpoint sites in (-DTDS_FAILPOINTS=ON).
/// Tests that need live injection skip themselves when false.
inline constexpr bool kFailpointsEnabled =
#ifdef TDS_FAILPOINTS
    true;
#else
    false;
#endif

namespace failpoint {

/// When and how often an armed failpoint fires. Evaluation of the site
/// increments a per-name hit counter (1-based); the scenario decides per
/// hit.
struct Scenario {
  /// Fire on exactly this hit (1-based); 0 disables the hit trigger.
  uint64_t fire_on_hit = 0;
  /// With fire_on_hit: keep firing on every later hit too (a persistent
  /// fault rather than a transient one).
  bool sticky = false;
  /// Additionally fire any hit with this probability, drawn
  /// deterministically from HashCombine(seed, hit).
  double probability = 0.0;
  uint64_t seed = 0;
};

/// Arms (or re-arms) `name`, resetting its hit counter.
void Arm(std::string_view name, const Scenario& scenario);
/// Fire exactly once, on the `nth` evaluation (1-based).
void ArmNthHit(std::string_view name, uint64_t nth);
/// Fire each evaluation independently with probability `p` (deterministic
/// in (seed, hit)).
void ArmProbability(std::string_view name, double p, uint64_t seed);

void Disarm(std::string_view name);
void DisarmAll();

/// Evaluations of `name` since it was last armed (0 when not armed).
uint64_t Hits(std::string_view name);
/// Times `name` actually fired since it was last armed.
uint64_t Fires(std::string_view name);

/// Suppresses every failpoint on the current thread for the scope's
/// lifetime. Recovery/rollback paths wrap themselves in one so that a
/// sticky or probabilistic scenario cannot inject a second fault into the
/// code undoing the first.
class SuppressionScope {
 public:
  SuppressionScope();
  ~SuppressionScope();
  SuppressionScope(const SuppressionScope&) = delete;
  SuppressionScope& operator=(const SuppressionScope&) = delete;
};

/// Site evaluation (called through TDS_FAILPOINT, not directly): true when
/// the armed scenario for `name` fires this hit.
bool Evaluate(const char* name);

}  // namespace failpoint
}  // namespace tds

#ifdef TDS_FAILPOINTS
#define TDS_FAILPOINT(name) (::tds::failpoint::Evaluate(name))
#else
#define TDS_FAILPOINT(name) (false)
#endif

/// The common site shape: fail the enclosing Status-returning function.
#define TDS_FAILPOINT_RETURN(name)                                    \
  do {                                                                \
    if (TDS_FAILPOINT(name)) {                                        \
      return ::tds::Status::Unavailable(std::string("injected fault: ") + \
                                        (name));                      \
    }                                                                 \
  } while (0)

#endif  // TDS_UTIL_FAILPOINT_H_
