#include "util/failpoint.h"

#include <vector>

#include "util/mutex.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace tds {
namespace failpoint {
namespace {

struct Entry {
  std::string name;
  Scenario scenario;
  uint64_t hits = 0;
  uint64_t fires = 0;
};

struct Registry {
  Mutex mu;
  std::vector<Entry> entries TDS_GUARDED_BY(mu);
};

/// Leaked singleton: failpoints may be evaluated from writer threads that
/// outlive main()'s locals during process teardown.
Registry& Global() {
  static Registry* registry = new Registry;
  return *registry;
}

thread_local int suppression_depth = 0;

Entry* FindLocked(Registry& registry, std::string_view name)
    TDS_REQUIRES(registry.mu) {
  for (Entry& entry : registry.entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

}  // namespace

void Arm(std::string_view name, const Scenario& scenario) {
  Registry& registry = Global();
  MutexLock lock(registry.mu);
  if (Entry* entry = FindLocked(registry, name)) {
    entry->scenario = scenario;
    entry->hits = 0;
    entry->fires = 0;
    return;
  }
  registry.entries.push_back(Entry{std::string(name), scenario, 0, 0});
}

void ArmNthHit(std::string_view name, uint64_t nth) {
  Scenario scenario;
  scenario.fire_on_hit = nth;
  Arm(name, scenario);
}

void ArmProbability(std::string_view name, double p, uint64_t seed) {
  Scenario scenario;
  scenario.probability = p;
  scenario.seed = seed;
  Arm(name, scenario);
}

void Disarm(std::string_view name) {
  Registry& registry = Global();
  MutexLock lock(registry.mu);
  for (auto it = registry.entries.begin(); it != registry.entries.end();
       ++it) {
    if (it->name == name) {
      registry.entries.erase(it);
      return;
    }
  }
}

void DisarmAll() {
  Registry& registry = Global();
  MutexLock lock(registry.mu);
  registry.entries.clear();
}

uint64_t Hits(std::string_view name) {
  Registry& registry = Global();
  MutexLock lock(registry.mu);
  const Entry* entry = FindLocked(registry, name);
  return entry == nullptr ? 0 : entry->hits;
}

uint64_t Fires(std::string_view name) {
  Registry& registry = Global();
  MutexLock lock(registry.mu);
  const Entry* entry = FindLocked(registry, name);
  return entry == nullptr ? 0 : entry->fires;
}

SuppressionScope::SuppressionScope() { ++suppression_depth; }
SuppressionScope::~SuppressionScope() { --suppression_depth; }

bool Evaluate(const char* name) {
  if (suppression_depth > 0) return false;
  Registry& registry = Global();
  MutexLock lock(registry.mu);
  Entry* entry = FindLocked(registry, name);
  if (entry == nullptr) return false;
  const uint64_t hit = ++entry->hits;
  const Scenario& scenario = entry->scenario;
  bool fire = false;
  if (scenario.fire_on_hit != 0) {
    fire = scenario.sticky ? hit >= scenario.fire_on_hit
                           : hit == scenario.fire_on_hit;
  }
  if (!fire && scenario.probability > 0.0) {
    fire = HashedUniform(scenario.seed, hit) < scenario.probability;
  }
  if (fire) ++entry->fires;
  return fire;
}

}  // namespace failpoint
}  // namespace tds
