#ifndef TDS_UTIL_THREAD_ANNOTATIONS_H_
#define TDS_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (Abseil/RocksDB-style), under a
/// TDS_ prefix. On Clang with -Wthread-safety these turn the engine's
/// locking comments ("guarded by snapshot_mutex", "requires the exclusive
/// route lock") into compile-time-checked contracts over *every* code path
/// — not just the schedules a TSan run happens to execute. On other
/// compilers every macro expands to nothing, so the annotations cost
/// nothing off Clang.
///
/// Usage (see src/util/mutex.h for the annotated lock types):
///   tds::Mutex mu_;
///   int value_ TDS_GUARDED_BY(mu_);              // field needs mu_ held
///   void Drain() TDS_REQUIRES(mu_);              // caller must hold mu_
///   void Publish() TDS_EXCLUDES(mu_);            // caller must NOT hold mu_
///
/// tools/check.sh thread-safety builds the library with clang and
/// -Werror=thread-safety; tests/negative_compile/ proves the annotations
/// actually reject unguarded access.

#if defined(__clang__) && !defined(SWIG)
#define TDS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define TDS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Declares a type to be a capability ("mutex", "shared_mutex").
#define TDS_CAPABILITY(x) TDS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type that acquires in its constructor and releases in
/// its destructor.
#define TDS_SCOPED_CAPABILITY TDS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// The field may only be accessed while holding the named capability.
#define TDS_GUARDED_BY(x) TDS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// The pointed-to data (not the pointer itself) is guarded by x.
#define TDS_PT_GUARDED_BY(x) TDS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// The function may only be called while holding the capability exclusively.
#define TDS_REQUIRES(...) \
  TDS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// The function may only be called while holding the capability (shared).
#define TDS_REQUIRES_SHARED(...) \
  TDS_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability exclusively and does not release it.
#define TDS_ACQUIRE(...) \
  TDS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// The function acquires the capability shared and does not release it.
#define TDS_ACQUIRE_SHARED(...) \
  TDS_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// The function releases the (exclusively held) capability.
#define TDS_RELEASE(...) \
  TDS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// The function releases the (shared-held) capability.
#define TDS_RELEASE_SHARED(...) \
  TDS_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// The function releases the capability whether held shared or exclusively.
#define TDS_RELEASE_GENERIC(...) \
  TDS_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// The function tries to acquire; first argument is the success value.
#define TDS_TRY_ACQUIRE(...) \
  TDS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define TDS_TRY_ACQUIRE_SHARED(...) \
  TDS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

/// The function may only be called while NOT holding the capability
/// (deadlock prevention on self-locking methods).
#define TDS_EXCLUDES(...) \
  TDS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The function asserts (at runtime) that the capability is held.
#define TDS_ASSERT_CAPABILITY(x) \
  TDS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Returns a reference to the named capability (accessor annotations).
#define TDS_RETURN_CAPABILITY(x) \
  TDS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Keep engine code free
/// of this — the check.sh thread-safety leg expects zero suppressions in
/// src/engine (tools/tds_lint.py enforces it).
#define TDS_NO_THREAD_SAFETY_ANALYSIS \
  TDS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // TDS_UTIL_THREAD_ANNOTATIONS_H_
