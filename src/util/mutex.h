#ifndef TDS_UTIL_MUTEX_H_
#define TDS_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace tds {

/// Annotated wrappers over the standard mutexes. These are the ONLY mutex
/// types allowed outside this file (tools/tds_lint.py enforces it): raw
/// std::mutex members are invisible to Clang's Thread Safety Analysis, so a
/// field guarded by one is a locking rule that lives in a comment. Wrapping
/// the standard types in TDS_CAPABILITY classes lets every guarded field be
/// declared TDS_GUARDED_BY(mu) and every lock-holding method TDS_REQUIRES /
/// TDS_EXCLUDES — and the check.sh thread-safety leg proves the discipline
/// for all paths at compile time.
///
/// The wrappers add no state and no behavior; they compile to the standard
/// types. Google style names (Lock/Unlock, MutexLock) follow the Abseil
/// originals these mirror.

/// Exclusive mutex (std::mutex) as a Clang TSA capability.
class TDS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TDS_ACQUIRE() { mu_.lock(); }
  void Unlock() TDS_RELEASE() { mu_.unlock(); }
  bool TryLock() TDS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer mutex (std::shared_mutex) as a Clang TSA capability.
class TDS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() TDS_ACQUIRE() { mu_.lock(); }
  void Unlock() TDS_RELEASE() { mu_.unlock(); }
  void LockShared() TDS_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() TDS_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex (std::lock_guard analogue).
class TDS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TDS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() TDS_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class TDS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) TDS_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() TDS_RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class TDS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) TDS_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() TDS_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable for tds::Mutex. Wait() takes the Mutex itself (not a
/// lock object) and is annotated TDS_REQUIRES(mu): callers hold the mutex
/// via MutexLock and loop on their predicate —
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
///
/// — which keeps the guarded predicate read inside the analyzed critical
/// section (a predicate lambda handed to std::condition_variable::wait is a
/// separate function the analysis cannot see into).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before returning.
  /// From the caller's (and the analysis') view the mutex is held
  /// throughout.
  void Wait(Mutex& mu) TDS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // still held: ownership returns to the caller's scope
  }

  /// Timed Wait: returns false iff the timeout elapsed without a notify.
  /// Spurious wakeups return true, so callers loop on their predicate
  /// exactly as with Wait(). Lives here (src/util) so the engine never
  /// reads a clock itself — the wall-clock lint rule keeps src/engine
  /// tick-driven.
  bool WaitFor(Mutex& mu, std::chrono::nanoseconds timeout) TDS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();  // still held: ownership returns to the caller's scope
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tds

#endif  // TDS_UTIL_MUTEX_H_
