#include "util/stable.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace tds {

namespace {

// Chambers–Mallows–Stuck generator for a standard symmetric p-stable
// variate from theta ~ U(-pi/2, pi/2) and W ~ Exp(1).
double CmsStable(double p, double theta, double w) {
  if (p == 2.0) {
    // Direct Gaussian would need a different transform; handled by caller.
    return 0.0;
  }
  if (p == 1.0) {
    return std::tan(theta);  // Cauchy.
  }
  const double a = std::sin(p * theta) / std::pow(std::cos(theta), 1.0 / p);
  const double b = std::pow(std::cos(theta * (1.0 - p)) / w, (1.0 - p) / p);
  return a * b;
}

}  // namespace

StableSampler::StableSampler(double p) : p_(p) {
  if (p == 1.0) {
    // |Cauchy| has median tan(pi/4) = 1.
    median_abs_ = 1.0;
  } else if (p == 2.0) {
    // FromUniforms(p=2) yields N(0, 2) (standard 2-stable with the sketch
    // scale convention); median of |N(0, sigma^2)| is sigma * Phi^{-1}(3/4).
    median_abs_ = std::sqrt(2.0) * 0.6744897501960817;
  } else {
    // Deterministic Monte Carlo calibration: median of |X| over a fixed
    // sample. The calibration constant only has to be consistent with
    // FromUniforms, which uses the same transform.
    constexpr int kSamples = 1 << 18;
    std::vector<double> abs_values;
    abs_values.reserve(kSamples);
    Rng rng(0x5ab1e5eedULL);
    for (int i = 0; i < kSamples; ++i) {
      abs_values.push_back(
          std::fabs(FromUniforms(rng.NextOpenDouble(), rng.NextOpenDouble())));
    }
    auto mid = abs_values.begin() + kSamples / 2;
    std::nth_element(abs_values.begin(), mid, abs_values.end());
    median_abs_ = *mid;
  }
}

StatusOr<StableSampler> StableSampler::Create(double p) {
  if (!(p > 0.0) || p > 2.0) {
    return Status::InvalidArgument("stability index p must be in (0, 2]");
  }
  return StableSampler(p);
}

double StableSampler::FromUniforms(double u1, double u2) const {
  const double theta = M_PI * (u1 - 0.5);  // U(-pi/2, pi/2)
  if (p_ == 2.0) {
    // 2-stable: Gaussian via Box-Muller on the same two uniforms. This is
    // N(0, 2) under the standard S(2) parameterization.
    return std::sqrt(2.0) *
           (std::sqrt(-2.0 * std::log(u2)) * std::cos(2.0 * M_PI * u1));
  }
  const double w = -std::log(u2);  // Exp(1)
  return CmsStable(p_, theta, w);
}

}  // namespace tds
