#ifndef TDS_UTIL_CHECK_H_
#define TDS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant-checking macros. These guard internal invariants that indicate
/// programmer error (not bad input); violations abort with a message. Input
/// validation on public construction paths uses tds::Status instead.
#define TDS_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "TDS_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define TDS_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "TDS_CHECK failed: %s (%s) at %s:%d\n", #cond,   \
                   (msg), __FILE__, __LINE__);                              \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define TDS_CHECK_LE(a, b) TDS_CHECK((a) <= (b))
#define TDS_CHECK_LT(a, b) TDS_CHECK((a) < (b))
#define TDS_CHECK_GE(a, b) TDS_CHECK((a) >= (b))
#define TDS_CHECK_GT(a, b) TDS_CHECK((a) > (b))
#define TDS_CHECK_EQ(a, b) TDS_CHECK((a) == (b))
#define TDS_CHECK_NE(a, b) TDS_CHECK((a) != (b))

#endif  // TDS_UTIL_CHECK_H_
