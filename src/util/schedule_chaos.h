#ifndef TDS_UTIL_SCHEDULE_CHAOS_H_
#define TDS_UTIL_SCHEDULE_CHAOS_H_

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <thread>

#include "util/atomic.h"
#include "util/random.h"

namespace tds {
namespace sched_chaos {

/// Schedule-perturbation race amplifier (docs/CORRECTNESS.md, "Schedule
/// chaos"). `TDS_INTERLEAVE_POINT(name)` marks a scheduling-sensitive
/// instant — a cursor publish, a park/wake handshake, a route-table flip —
/// and compiles to nothing in ordinary builds. Under -DTDS_SCHED_CHAOS=ON
/// each named point keeps a per-site hit counter and, on a seeded subset
/// of hits, yields the thread or sleeps a bounded few microseconds. The
/// effect is to stretch the tiny race windows TSan needs threads to
/// actually collide in, without changing any observable state: a chaos run
/// must produce byte-identical results to a quiet one, only with far more
/// interleavings explored per execution.
///
/// The policy is a pure function of (seed, point name, hit index) — see
/// DecisionFor — so a failing schedule replays exactly from its seed
/// (TDS_SCHED_CHAOS_SEED in the environment; tools/check.sh chaos pins
/// one). Perturbation lives here in util/, not the engine: the engine's
/// own sources stay free of yield/sleep idioms (the spin-loop lint rule),
/// and the macro keeps the instrumented call sites grep-able.

enum class Decision : std::uint8_t { kNone, kYield, kSleep };

/// FNV-1a over the point name: stable across runs and platforms, so a
/// seed's schedule does not depend on link order or pointer values.
inline std::uint64_t PointHash(const char* name) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char* p = name; *p != '\0'; ++p) {
    hash ^= static_cast<unsigned char>(*p);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// The seeded policy, exposed (and compiled) independently of the build
/// flag so tests can pin its determinism and mix quality everywhere:
/// ~1/16 of hits sleep, a further ~3/16 yield, the rest run undisturbed.
inline Decision DecisionFor(std::uint64_t seed, const char* name,
                            std::uint64_t hit) {
  const std::uint64_t mixed = HashCombine(seed, HashCombine(PointHash(name), hit));
  if ((mixed & 15u) == 0) return Decision::kSleep;
  if ((mixed & 3u) == 1) return Decision::kYield;
  return Decision::kNone;
}

/// Sleep length in [1, 100] microseconds for a sleeping hit — long enough
/// to push another thread through the window, bounded so chaos legs stay
/// fast and hang-free.
inline std::uint64_t SleepMicrosFor(std::uint64_t seed, const char* name,
                                    std::uint64_t hit) {
  const std::uint64_t mixed =
      HashCombine(seed ^ 0x5eedc4a05ull, HashCombine(PointHash(name), hit));
  return 1 + mixed % 100;
}

/// Process-wide seed, read once from TDS_SCHED_CHAOS_SEED (default 1).
inline std::uint64_t Seed() {
  static const std::uint64_t seed = [] {
    // Read once at first perturbation, before threads race on it.
    const char* env = std::getenv("TDS_SCHED_CHAOS_SEED");  // NOLINT(concurrency-mt-unsafe)
    if (env == nullptr || *env == '\0') return std::uint64_t{1};
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 0));
  }();
  return seed;
}

inline void Perturb(const char* name, std::uint64_t hit) {
  switch (DecisionFor(Seed(), name, hit)) {
    case Decision::kNone:
      break;
    case Decision::kYield:
      std::this_thread::yield();
      break;
    case Decision::kSleep:
      std::this_thread::sleep_for(
          std::chrono::microseconds(SleepMicrosFor(Seed(), name, hit)));
      break;
  }
}

}  // namespace sched_chaos
}  // namespace tds

#ifdef TDS_SCHED_CHAOS
// PlainAtomic (never instrumented): the hit counter is chaos bookkeeping,
// not protocol state — it must stay out of the model-check interleaving
// space even when both flags are on.
#define TDS_INTERLEAVE_POINT(name)                                        \
  do {                                                                    \
    static ::tds::PlainAtomic<std::uint64_t> tds_interleave_hits{0};      \
    ::tds::sched_chaos::Perturb(                                          \
        name, tds_interleave_hits.fetch_add(1, std::memory_order_relaxed)); \
  } while (0)
#else
#define TDS_INTERLEAVE_POINT(name) ((void)0)
#endif

#endif  // TDS_UTIL_SCHEDULE_CHAOS_H_
