#ifndef TDS_UTIL_CODEC_H_
#define TDS_UTIL_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace tds {

/// Minimal binary encoder for structure snapshots: varints (LEB128),
/// zigzag-signed varints, raw 64-bit doubles, and length-prefixed strings.
/// The encoding is platform-independent (little-endian, no padding).
class Encoder {
 public:
  void PutVarint(uint64_t value);
  void PutSigned(int64_t value);
  void PutDouble(double value);
  void PutString(std::string_view value);

  /// Returns the accumulated bytes (the encoder may be reused afterwards).
  std::string Finish() { return std::move(buffer_); }

  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Matching decoder. All getters return false (and leave the output
/// untouched) on truncated or malformed input; decoding code converts that
/// into Status::InvalidArgument at its API boundary.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  bool GetVarint(uint64_t* value);
  bool GetSigned(int64_t* value);
  bool GetDouble(double* value);
  bool GetString(std::string* value);

  /// True when all input has been consumed.
  bool Done() const { return position_ >= data_.size(); }

  size_t remaining() const { return data_.size() - position_; }

 private:
  std::string_view data_;
  size_t position_ = 0;
};

/// Convenience error for decoders.
inline Status CorruptSnapshot(const char* what) {
  return Status::InvalidArgument(std::string("corrupt snapshot: ") + what);
}

}  // namespace tds

#endif  // TDS_UTIL_CODEC_H_
