#ifndef TDS_UTIL_AUDIT_H_
#define TDS_UTIL_AUDIT_H_

#include <string>

#include "util/check.h"
#include "util/status.h"

namespace tds {

/// Structural invariant audits.
///
/// Every core structure exposes a `Status AuditInvariants()` method that
/// walks its internal state and verifies the invariants its algorithms rely
/// on (canonical EH bucket ordering, WBMH span contiguity and
/// merge-eligibility, MV/D rank monotonicity, count checksums, ...). Audits
/// are:
///
///  * callable from tests at any time — they never mutate logical state
///    (WbmhLayout may extend its memoized region table, which is derived
///    configuration, not stream state);
///  * run automatically after every mutation when the library is compiled
///    with -DTDS_AUDIT=ON (`TDS_AUDIT_MUTATION` below), aborting on the
///    first violation so sanitizer builds pinpoint the offending operation;
///  * zero-overhead in ordinary Release builds (the hook compiles away).
///
/// Audit checks use TDS_AUDIT_CHECK, which returns a Status carrying the
/// failed condition and source location instead of aborting, so tests can
/// assert on *specific* violations (e.g. hostile-snapshot rejection).

/// Builds the error Status for a failed audit check.
Status AuditViolation(const char* file, int line, const char* condition,
                      const std::string& detail);

}  // namespace tds

/// For use inside a `Status AuditInvariants()` body: fails the audit with
/// the stringified condition, source location, and a detail message.
#define TDS_AUDIT_CHECK(cond, detail)                                       \
  do {                                                                      \
    if (!(cond)) {                                                          \
      return ::tds::AuditViolation(__FILE__, __LINE__, #cond, (detail));    \
    }                                                                       \
  } while (0)

/// Post-mutation hook: in TDS_AUDIT builds evaluates `status_expr`
/// (typically `AuditInvariants()`) and aborts on violation; compiles to
/// nothing otherwise. Place at the end of every mutating method.
#ifdef TDS_AUDIT
#define TDS_AUDIT_MUTATION(status_expr)                                      \
  do {                                                                       \
    const ::tds::Status tds_audit_status = (status_expr);                    \
    TDS_CHECK_MSG(tds_audit_status.ok(),                                     \
                  tds_audit_status.ToString().c_str());                      \
  } while (0)
#else
#define TDS_AUDIT_MUTATION(status_expr) ((void)0)
#endif

#endif  // TDS_UTIL_AUDIT_H_
