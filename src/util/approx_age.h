#ifndef TDS_UTIL_APPROX_AGE_H_
#define TDS_UTIL_APPROX_AGE_H_

#include <cstdint>

#include "util/codec.h"
#include "util/common.h"
#include "util/random.h"

namespace tds {

/// An age (elapsed-tick) counter stored in O(log log N) bits, realizing the
/// paper's Section 5 closing remark (attributed to Y. Matias): histogram
/// time boundaries kept to within a constant factor suffice for polynomial
/// decay — a constant-factor age error is only a constant-factor weight
/// error — and such a boundary needs only O(log log N) bits.
///
/// Representation: ages up to kExactLimit are exact (a few bits); beyond
/// that the age is a level l on the geometric grid kExactLimit*(1+delta)^l,
/// promoted stochastically Morris-style — each elapsed tick promotes with
/// probability 1/(gap to the next grid point), so expected dwell time per
/// level equals the gap and the estimate stays unbiased in time-per-level.
/// The level needs ceil(log2(#levels)) = O(log log N) bits. (A presampled
/// geometric countdown accelerates advancement at runtime; being memoryless
/// it carries no distributional information and is not chargeable state.)
class ApproxAge {
 public:
  ApproxAge() : ApproxAge(0.25) {}
  explicit ApproxAge(double delta) : delta_(delta) {}

  /// Advances the age by `ticks` elapsed ticks (randomness from a shared
  /// Rng; distinct boundaries may share one generator).
  void Advance(Tick ticks, Rng& rng);

  /// Current age estimate: exact below kExactLimit, else the grid value.
  double Estimate() const;

  /// Keeps the younger (smaller) of the two ages — bucket merges inherit
  /// the newer boundary.
  void TakeYounger(const ApproxAge& other);

  /// Age below which values are stored exactly.
  static constexpr Tick kExactLimit = 16;

  bool exact_phase() const { return level_ == 0; }
  uint32_t level() const { return level_; }

  /// Snapshot support.
  void EncodeTo(class Encoder& encoder) const;
  bool DecodeFrom(class Decoder& decoder);

  /// Chargeable bits for ages up to max_age: the exact field plus the
  /// level field, ceil(log2(log_{1+delta}(max_age / kExactLimit))) bits.
  static int StorageBits(double delta, double max_age);

 private:
  /// Samples the geometric dwell countdown for the current level.
  Tick SampleCountdown(Rng& rng) const;

  double delta_;
  uint32_t level_ = 0;    ///< 0 = exact phase; l >= 1 = grid level l-1.
  Tick exact_age_ = 1;    ///< Valid in the exact phase.
  Tick countdown_ = 0;    ///< Presampled ticks until the next promotion.
};

}  // namespace tds

#endif  // TDS_UTIL_APPROX_AGE_H_
