#ifndef TDS_UTIL_MORRIS_H_
#define TDS_UTIL_MORRIS_H_

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace tds {

/// Morris's probabilistic counter (CACM 1978), cited in the paper's
/// introduction as the O(log log n)-bit solution for approximate
/// *non-decaying* counts. Included as a substrate and as the baseline for
/// the storage-comparison benchmark.
///
/// The counter keeps a small register `c` and increments it with probability
/// `(1+a)^{-c}`; the estimate is `((1+a)^c - 1) / a`. Smaller `a` gives
/// better accuracy at the cost of a slightly larger register. The standard
/// relative standard deviation is sqrt(a/2) per counter; averaging
/// independent copies reduces it further (see MorrisEnsemble).
class MorrisCounter {
 public:
  struct Options {
    /// Base parameter a > 0; relative std dev ~ sqrt(a/2).
    double a = 0.1;
    uint64_t seed = 1;
  };

  static StatusOr<MorrisCounter> Create(const Options& options);

  /// Registers one event.
  void Increment();

  /// Registers `n` events (n independent probabilistic increments).
  void Add(uint64_t n);

  /// Unbiased estimate of the number of events registered so far.
  double Estimate() const;

  /// Value of the internal register (for storage accounting/tests).
  uint32_t Register() const { return c_; }

  /// Bits needed for the register: ceil(log2(c+2)) — O(log log n).
  int StorageBits() const;

 private:
  MorrisCounter(const Options& options);

  double a_;
  uint32_t c_ = 0;
  Rng rng_;
};

/// Averages k independent Morris counters for tighter concentration.
class MorrisEnsemble {
 public:
  struct Options {
    double a = 0.1;
    int copies = 8;
    uint64_t seed = 1;
  };

  static StatusOr<MorrisEnsemble> Create(const Options& options);

  void Increment();
  void Add(uint64_t n);
  double Estimate() const;
  int StorageBits() const;

 private:
  explicit MorrisEnsemble(std::vector<MorrisCounter> counters);

  std::vector<MorrisCounter> counters_;
};

}  // namespace tds

#endif  // TDS_UTIL_MORRIS_H_
