#include "util/codec.h"

#include <bit>
#include <cstring>

namespace tds {

void Encoder::PutVarint(uint64_t value) {
  while (value >= 0x80) {
    buffer_.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  buffer_.push_back(static_cast<char>(value));
}

void Encoder::PutSigned(int64_t value) {
  // Zigzag encoding.
  PutVarint((static_cast<uint64_t>(value) << 1) ^
            static_cast<uint64_t>(value >> 63));
}

void Encoder::PutDouble(double value) {
  uint64_t bits = std::bit_cast<uint64_t>(value);
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<char>(bits & 0xff));
    bits >>= 8;
  }
}

void Encoder::PutString(std::string_view value) {
  PutVarint(value.size());
  buffer_.append(value);
}

bool Decoder::GetVarint(uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  size_t position = position_;
  while (position < data_.size() && shift < 64) {
    const auto byte = static_cast<uint8_t>(data_[position++]);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      position_ = position;
      return true;
    }
    shift += 7;
  }
  return false;
}

bool Decoder::GetSigned(int64_t* value) {
  uint64_t raw = 0;
  if (!GetVarint(&raw)) return false;
  *value = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  return true;
}

bool Decoder::GetDouble(double* value) {
  if (remaining() < 8) return false;
  uint64_t bits = 0;
  for (int i = 7; i >= 0; --i) {
    bits = (bits << 8) | static_cast<uint8_t>(data_[position_ + i]);
  }
  position_ += 8;
  *value = std::bit_cast<double>(bits);
  return true;
}

bool Decoder::GetString(std::string* value) {
  uint64_t length = 0;
  if (!GetVarint(&length)) return false;
  if (remaining() < length) return false;
  value->assign(data_.substr(position_, length));
  position_ += length;
  return true;
}

}  // namespace tds
