#ifndef TDS_UTIL_DEADLINE_H_
#define TDS_UTIL_DEADLINE_H_

#include <algorithm>
#include <chrono>

namespace tds {

/// A point in time that a blocking wait must not overrun.
///
/// Infinite() never expires and never touches a clock; After(budget)
/// snapshots steady_clock::now() once at construction and compares against
/// it on Expired(). This class lives in src/util so that src/engine — whose
/// lint rules forbid naming a clock (decayed-aggregate ticks must come from
/// the caller) — can carry and test admission-control deadlines as opaque
/// values.
class Deadline {
 public:
  /// Never expires; Expired() is a constant false with no clock read, so
  /// infinite-deadline wait loops stay syscall-free on the fast path.
  static Deadline Infinite() { return Deadline(); }

  /// Expires `budget` from now (a non-positive budget is already expired).
  static Deadline After(std::chrono::nanoseconds budget) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = std::chrono::steady_clock::now() + budget;
    return d;
  }

  bool infinite() const { return infinite_; }

  bool Expired() const {
    return !infinite_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Time left, clamped to [0, cap]. Infinite deadlines report `cap`
  /// (callers park in bounded slices and re-check their predicate).
  std::chrono::nanoseconds RemainingCapped(
      std::chrono::nanoseconds cap) const {
    if (infinite_) return cap;
    const auto left = std::chrono::duration_cast<std::chrono::nanoseconds>(
        at_ - std::chrono::steady_clock::now());
    if (left <= std::chrono::nanoseconds::zero()) {
      return std::chrono::nanoseconds::zero();
    }
    return std::min(cap, left);
  }

 private:
  Deadline() = default;

  bool infinite_ = true;
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace tds

#endif  // TDS_UTIL_DEADLINE_H_
