#ifndef TDS_UTIL_BACKOFF_H_
#define TDS_UTIL_BACKOFF_H_

#include <chrono>
#include <functional>
#include <thread>

namespace tds {

/// Bounded exponential backoff for transient-IO retry loops (the
/// checkpoint log's kUnavailable retries, engine/checkpoint_log.h).
///
/// The *decision* side (how many attempts, which delay each attempt gets)
/// is pure arithmetic and fully deterministic; only the *sleeping* side
/// touches the OS, and it is injectable so tests swap in a recorder and
/// retry loops stay deterministic under failpoints. Deliberately no
/// jitter: this backs off a local filesystem, not a shared service, and
/// reproducibility is worth more than decorrelation here.
///
/// Lives in src/util (not src/engine) on purpose: engine code may not
/// sleep (tools/tds_lint.py rule spin-loop) — callers hold no engine locks
/// while waiting out a retry delay, so the blanket ban does not apply to
/// the IO layer's sleeper.
class ExponentialBackoff {
 public:
  struct Options {
    std::chrono::nanoseconds initial_delay = std::chrono::milliseconds(1);
    double multiplier = 2.0;
    std::chrono::nanoseconds max_delay = std::chrono::milliseconds(50);
    /// How the delay is actually spent. Defaults to a real sleep; tests
    /// inject a recorder (or a no-op) for deterministic retry loops.
    std::function<void(std::chrono::nanoseconds)> sleeper;
  };

  explicit ExponentialBackoff(const Options& options)
      : options_(options), next_delay_(options.initial_delay) {}

  /// The delay the next Wait() will spend (peek; does not advance).
  std::chrono::nanoseconds next_delay() const { return next_delay_; }

  /// Spends the current delay through the sleeper, then advances the
  /// schedule: delay *= multiplier, capped at max_delay.
  void Wait() {
    const std::chrono::nanoseconds delay = next_delay_;
    if (options_.sleeper) {
      options_.sleeper(delay);
    } else {
      std::this_thread::sleep_for(delay);
    }
    const auto scaled = std::chrono::nanoseconds(static_cast<int64_t>(
        static_cast<double>(next_delay_.count()) * options_.multiplier));
    next_delay_ = scaled < options_.max_delay ? scaled : options_.max_delay;
  }

  /// Restarts the schedule at initial_delay (a fresh retry episode).
  void Reset() { next_delay_ = options_.initial_delay; }

 private:
  Options options_;
  std::chrono::nanoseconds next_delay_;
};

}  // namespace tds

#endif  // TDS_UTIL_BACKOFF_H_
