#include "util/random.h"

#include <cmath>

#include "util/check.h"

namespace tds {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return SplitMix64(a ^ (SplitMix64(b) + 0x9e3779b97f4a7c15ULL));
}

uint64_t HashCombine(uint64_t a, uint64_t b, uint64_t c) {
  return HashCombine(HashCombine(a, b), c);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four xoshiro words from consecutive SplitMix64 outputs, as
  // recommended by the xoshiro authors.
  uint64_t s = seed;
  for (auto& word : s_) {
    s += 0x9e3779b97f4a7c15ULL;
    word = SplitMix64(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double BitsToUnitDouble(uint64_t bits) {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

double Rng::NextDouble() { return BitsToUnitDouble(Next()); }

double Rng::NextOpenDouble() {
  double u = NextDouble();
  // Nudge 0 into the open interval; 1 is already excluded.
  return u > 0.0 ? u : 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  TDS_CHECK_GE(bound, 1u);
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0ULL - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextGaussian() {
  const double u1 = NextOpenDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

void Rng::SaveState(uint64_t out[4]) const {
  for (int i = 0; i < 4; ++i) out[i] = s_[i];
}

void Rng::RestoreState(const uint64_t in[4]) {
  for (int i = 0; i < 4; ++i) s_[i] = in[i];
}

double HashedUniform(uint64_t seed, uint64_t index) {
  uint64_t bits = HashCombine(seed, index);
  double u = BitsToUnitDouble(bits);
  return u > 0.0 ? u : 0x1.0p-53;
}

}  // namespace tds
