#ifndef TDS_UTIL_COMMON_H_
#define TDS_UTIL_COMMON_H_

#include <cstdint>
#include <limits>

namespace tds {

/// Discrete time tick. The paper (Section 2) assumes time is discretized and
/// obtains integral values; all structures in this library share that model.
/// Ticks are signed so that age arithmetic (`T - t + 1`) never wraps.
using Tick = int64_t;

/// Sentinel for "no horizon": the decay function is positive for all ages.
inline constexpr Tick kInfiniteHorizon = std::numeric_limits<Tick>::max();

/// Bucket-storage layout for the exponential-histogram family (EH, CEH,
/// CoarseCEH). Both layouts are behaviorally bit-identical — same query
/// answers, same snapshot bytes, same audit results — and differ only in
/// memory shape:
///  * kFlat: contiguous SoA arrays (stamps and counts separate), per-class
///    segments in canonical oldest-first order, front expiry by offset bump
///    and merge cascades as suffix compaction sweeps. One or two cache
///    lines per hot-path touch.
///  * kChain: the original per-size-class deque chains — kept as the
///    differential-testing oracle for the flat layout.
enum class HistogramLayout {
  kFlat,
  kChain,
};

/// Best-effort cache-line prefetch with read intent (no-op off GCC/Clang).
#if defined(__GNUC__) || defined(__clang__)
#define TDS_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define TDS_PREFETCH(addr) ((void)sizeof(addr))
#endif

/// Age convention used throughout the library.
///
/// An item that arrived at tick `t`, observed at current time `T >= t`, has
/// age `T - t + 1 >= 1` and weight `g(T - t + 1)`. This matches the worked
/// example in Section 5 of the paper, where an item arriving at time `t`
/// already carries weight `g(1)` at `T = t` (the paper's Section 2 statement
/// `g(T - t_i)` with `t_i < T` is the same sum re-indexed by one tick).
/// Using ages >= 1 also keeps polynomial decay `g(x) = x^{-alpha}` finite.
inline constexpr Tick AgeAt(Tick arrival, Tick now) { return now - arrival + 1; }

}  // namespace tds

#endif  // TDS_UTIL_COMMON_H_
