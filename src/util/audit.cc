#include "util/audit.h"

#include <cstdio>

namespace tds {

Status AuditViolation(const char* file, int line, const char* condition,
                      const std::string& detail) {
  char location[512];
  std::snprintf(location, sizeof(location), "audit violation at %s:%d: %s",
                file, line, condition);
  std::string message(location);
  if (!detail.empty()) {
    message += " (";
    message += detail;
    message += ")";
  }
  return Status::FailedPrecondition(std::move(message));
}

}  // namespace tds
