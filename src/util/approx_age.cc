#include "util/approx_age.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace tds {

namespace {
double GridValue(double delta, uint32_t grid_level) {
  return static_cast<double>(ApproxAge::kExactLimit) *
         std::pow(1.0 + delta, static_cast<double>(grid_level));
}
}  // namespace

Tick ApproxAge::SampleCountdown(Rng& rng) const {
  // Dwell at grid level l-1 before promotion to l: Geometric with success
  // probability 1/gap, where gap is the grid spacing being traversed.
  const uint32_t grid_level = level_ - 1;
  const double gap =
      GridValue(delta_, grid_level + 1) - GridValue(delta_, grid_level);
  const double p = 1.0 / std::max(1.0, gap);
  const double u = rng.NextOpenDouble();
  const double ticks = std::ceil(std::log(u) / std::log(1.0 - p));
  return std::max<Tick>(1, static_cast<Tick>(ticks));
}

void ApproxAge::Advance(Tick ticks, Rng& rng) {
  TDS_CHECK_GE(ticks, 0);
  while (ticks > 0) {
    if (level_ == 0) {
      const Tick step = std::min(ticks, kExactLimit - exact_age_);
      exact_age_ += step;
      ticks -= step;
      if (exact_age_ >= kExactLimit) {
        // Enter the stochastic phase at grid level 0 (value kExactLimit).
        level_ = 1;
        countdown_ = SampleCountdown(rng);
      }
      continue;
    }
    if (countdown_ > ticks) {
      countdown_ -= ticks;
      ticks = 0;
    } else {
      ticks -= countdown_;
      ++level_;
      countdown_ = SampleCountdown(rng);
    }
  }
}

double ApproxAge::Estimate() const {
  if (level_ == 0) return static_cast<double>(exact_age_);
  return GridValue(delta_, level_ - 1);
}

void ApproxAge::TakeYounger(const ApproxAge& other) {
  if (other.Estimate() < Estimate()) *this = other;
}

void ApproxAge::EncodeTo(Encoder& encoder) const {
  encoder.PutDouble(delta_);
  encoder.PutVarint(level_);
  encoder.PutVarint(static_cast<uint64_t>(exact_age_));
  encoder.PutVarint(static_cast<uint64_t>(countdown_));
}

bool ApproxAge::DecodeFrom(Decoder& decoder) {
  uint64_t level = 0, exact_age = 0, countdown = 0;
  double delta = 0.0;
  if (!decoder.GetDouble(&delta) || !decoder.GetVarint(&level) ||
      !decoder.GetVarint(&exact_age) || !decoder.GetVarint(&countdown)) {
    return false;
  }
  // Hostile-snapshot guards: a tiny or non-finite grid ratio would make
  // Advance() degenerate into per-tick stepping.
  if (!std::isfinite(delta) || delta < 1e-6 || delta > 1e3) return false;
  if (level > (1u << 20)) return false;
  if (level == 0 && (exact_age < 1 || exact_age > kExactLimit)) return false;
  if (level >= 1 && countdown < 1) return false;
  delta_ = delta;
  level_ = static_cast<uint32_t>(level);
  exact_age_ = static_cast<Tick>(exact_age);
  countdown_ = static_cast<Tick>(countdown);
  return true;
}

int ApproxAge::StorageBits(double delta, double max_age) {
  max_age = std::max(max_age, static_cast<double>(2 * kExactLimit));
  const double levels =
      std::log(max_age / static_cast<double>(kExactLimit)) /
      std::log(1.0 + delta);
  const int level_bits =
      static_cast<int>(std::ceil(std::log2(levels + 2.0)));
  const int exact_bits = 5;  // ages 1..16 plus the phase flag
  return level_bits + exact_bits;
}

}  // namespace tds
