#ifndef TDS_UTIL_STATUS_H_
#define TDS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace tds {

/// Error codes for fallible operations (construction/configuration paths).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  /// Transient refusal: the operation could not run *now* (admission
  /// control past its deadline, an injected failpoint) but may succeed if
  /// retried. Never indicates corrupted state.
  kUnavailable,
};

/// Lightweight RocksDB-style status object. Hot paths (Update/Query) are
/// infallible by construction; Status appears only on configuration and
/// factory paths.
///
/// [[nodiscard]] at class level: every function returning a Status by value
/// warns (and fails -Werror builds) when the result is dropped on the
/// floor — the audit protocol (AuditInvariants), the codec Decode paths,
/// and MergeFrom/ExtractIf all report failure only through this channel.
/// An intentionally ignored result must say so with a cast to void.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_.empty() ? "error" : message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error wrapper for factory functions. [[nodiscard]] like Status:
/// discarding one silently discards both the value and the failure.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): interchangeable by design.
  StatusOr(Status status) : status_(std::move(status)) {
    TDS_CHECK_MSG(!status_.ok(), "StatusOr(Status) requires an error status");
  }
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TDS_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    TDS_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    TDS_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tds

#endif  // TDS_UTIL_STATUS_H_
