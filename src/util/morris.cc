#include "util/morris.h"

#include <cmath>
#include <vector>

namespace tds {

MorrisCounter::MorrisCounter(const Options& options)
    : a_(options.a), rng_(options.seed) {}

StatusOr<MorrisCounter> MorrisCounter::Create(const Options& options) {
  if (!(options.a > 0.0)) {
    return Status::InvalidArgument("Morris base parameter a must be > 0");
  }
  return MorrisCounter(options);
}

void MorrisCounter::Increment() {
  const double p = std::pow(1.0 + a_, -static_cast<double>(c_));
  if (rng_.NextBernoulli(p)) ++c_;
}

void MorrisCounter::Add(uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) Increment();
}

double MorrisCounter::Estimate() const {
  return (std::pow(1.0 + a_, static_cast<double>(c_)) - 1.0) / a_;
}

int MorrisCounter::StorageBits() const {
  int bits = 1;
  while ((1u << bits) < c_ + 2u) ++bits;
  return bits;
}

MorrisEnsemble::MorrisEnsemble(std::vector<MorrisCounter> counters)
    : counters_(std::move(counters)) {}

StatusOr<MorrisEnsemble> MorrisEnsemble::Create(const Options& options) {
  if (options.copies < 1) {
    return Status::InvalidArgument("ensemble needs at least one copy");
  }
  std::vector<MorrisCounter> counters;
  counters.reserve(options.copies);
  for (int i = 0; i < options.copies; ++i) {
    MorrisCounter::Options copy_options;
    copy_options.a = options.a;
    copy_options.seed = HashCombine(options.seed, static_cast<uint64_t>(i));
    auto counter = MorrisCounter::Create(copy_options);
    if (!counter.ok()) return counter.status();
    counters.push_back(std::move(counter).value());
  }
  return MorrisEnsemble(std::move(counters));
}

void MorrisEnsemble::Increment() {
  for (auto& counter : counters_) counter.Increment();
}

void MorrisEnsemble::Add(uint64_t n) {
  for (auto& counter : counters_) counter.Add(n);
}

double MorrisEnsemble::Estimate() const {
  double sum = 0.0;
  for (const auto& counter : counters_) sum += counter.Estimate();
  return sum / static_cast<double>(counters_.size());
}

int MorrisEnsemble::StorageBits() const {
  int bits = 0;
  for (const auto& counter : counters_) bits += counter.StorageBits();
  return bits;
}

}  // namespace tds
