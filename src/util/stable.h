#ifndef TDS_UTIL_STABLE_H_
#define TDS_UTIL_STABLE_H_

#include <cstdint>

#include "util/status.h"

namespace tds {

/// Samplers for symmetric p-stable distributions, the randomness behind
/// Indyk's L_p sketch (Section 7.1 of the paper). For p = 1 this is the
/// standard Cauchy distribution, for p = 2 the Gaussian; general p in (0, 2]
/// uses the Chambers–Mallows–Stuck transform of two uniforms.
class StableSampler {
 public:
  /// Creates a sampler for stability index p in (0, 2].
  static StatusOr<StableSampler> Create(double p);

  double p() const { return p_; }

  /// Maps two uniforms u1 in (0,1), u2 in (0,1) to a standard symmetric
  /// p-stable variate. Deterministic in (u1, u2): the sketch regenerates
  /// matrix entries on the fly from hashed uniforms.
  double FromUniforms(double u1, double u2) const;

  /// Median of |X| for X standard symmetric p-stable. Indyk's median
  /// estimator divides by this to unbias the norm estimate. Exact for
  /// p = 1 and p = 2; calibrated once by deterministic Monte Carlo for
  /// other p (and cached in the instance).
  double MedianAbs() const { return median_abs_; }

 private:
  explicit StableSampler(double p);

  double p_;
  double median_abs_;
};

}  // namespace tds

#endif  // TDS_UTIL_STABLE_H_
