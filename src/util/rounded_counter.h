#ifndef TDS_UTIL_ROUNDED_COUNTER_H_
#define TDS_UTIL_ROUNDED_COUNTER_H_

#include <cstdint>

namespace tds {

/// A nonnegative counter stored in reduced-precision floating point: a
/// mantissa of `mantissa_bits` significant bits plus an exponent. This is the
/// approximate per-bucket count of Section 5 of the paper: storing only the
/// most significant `log(1/beta)` bits of each bucket count, where every
/// rounding step multiplies the stored value by a factor in [1, 1+beta).
///
/// WBMH merges bucket counts through a summation tree of depth <= log N; with
/// beta = epsilon / log N the accumulated factor is (1+beta)^{log N} <=
/// ~(1 + epsilon) (Lemma 5.1). The unknown-N variant rounds level i with
/// beta_i = epsilon / i^2 so that the infinite product still converges below
/// 1 + epsilon; callers implement that by widening `mantissa_bits` as the
/// merge level grows (see WbmhCounter).
///
/// `mantissa_bits == 0` disables rounding (exact mode, used for ablation).
class RoundedCounter {
 public:
  RoundedCounter() = default;
  explicit RoundedCounter(int mantissa_bits) : mantissa_bits_(mantissa_bits) {}

  /// Adds a nonnegative amount exactly (leaf-level accumulation).
  void Add(double amount);

  /// Absorbs another counter (bucket merge) and re-rounds once — one level
  /// of the Section 5 summation tree.
  void Merge(const RoundedCounter& other);

  /// Current (rounded) value.
  double Value() const { return value_; }

  /// True if the stored count is exactly zero.
  bool IsZero() const { return value_ == 0.0; }

  int mantissa_bits() const { return mantissa_bits_; }

  /// Re-targets the mantissa width (the beta_i = epsilon/i^2 schedule widens
  /// it by 2*log2(level) bits as merge levels accumulate).
  void set_mantissa_bits(int bits) { mantissa_bits_ = bits; }

  /// Storage bits for this counter given a bound maxN on the count value:
  /// mantissa + exponent field of ceil(log2(log2(maxN)+1)) bits. Exact mode
  /// (mantissa_bits == 0) charges ceil(log2(maxN+1)) bits.
  int StorageBits(double max_value) const;

  /// Rounds `x` down to `bits` significant bits then reports the value
  /// rounded *up* by one ulp-of-mantissa so the stored value is always an
  /// overestimate by a factor < (1 + 2^{1-bits}); with bits >= log2(1/beta)
  /// this is the (1+beta) step of the paper. Exposed for tests.
  static double RoundValue(double x, int bits);

 private:
  double value_ = 0.0;
  int mantissa_bits_ = 0;
};

}  // namespace tds

#endif  // TDS_UTIL_ROUNDED_COUNTER_H_
