#ifndef TDS_UTIL_ATOMIC_H_
#define TDS_UTIL_ATOMIC_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "modelcheck/hooks.h"

namespace tds {

/// `tds::Atomic<T>` — the ONLY sanctioned atomic type outside this file
/// (tools/tds_lint.py rule `raw-atomic` enforces it, exactly as `raw-mutex`
/// does for src/util/mutex.h). In ordinary builds it is a zero-cost shell
/// over std::atomic<T>: every method is a direct inline delegation with no
/// extra branch or state (the bench `atomics` parity row in
/// BENCH_engine.json guards this at ≥ 0.95×). Under -DTDS_MODELCHECK=ON the
/// same call sites first ask whether the calling thread belongs to an
/// active model-check run (src/modelcheck/sched.h); if so, the operation —
/// with its memory-order metadata — is routed through the controlled
/// scheduler, which models TSO store buffers and happens-before clocks and
/// enumerates interleavings. Threads outside a run (all ordinary tests,
/// even in a modelcheck build) still go straight to std::atomic.
///
/// `InstrumentedAtomic<T>` is the always-instrumented variant for the
/// checker's own fixtures and selftests, so scheduler internals are
/// exercised in every build, not just under the modelcheck flag.
///
/// Values cross the instrumentation boundary as zero-extended uint64
/// images, so T must be trivially copyable and at most 8 bytes — true of
/// every cursor, counter, flag and published pointer in the engine.

namespace atomic_internal {

template <typename T>
inline std::uint64_t Encode(T value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(T));
  return bits;
}

template <typename T>
inline T Decode(std::uint64_t bits) {
  T value;
  std::memcpy(&value, &bits, sizeof(T));
  return value;
}

/// Relaxed raw accessors handed to the scheduler: under the baton exactly
/// one model thread runs, so relaxed real-hardware ops are race-free; the
/// *modeled* ordering semantics live in the scheduler.
template <typename T>
inline std::uint64_t RawLoad(const void* obj) {
  return Encode<T>(
      static_cast<const std::atomic<T>*>(obj)->load(std::memory_order_relaxed));
}

template <typename T>
inline void RawStore(void* obj, std::uint64_t bits) {
  static_cast<std::atomic<T>*>(obj)->store(Decode<T>(bits),
                                           std::memory_order_relaxed);
}

template <typename T>
inline const modelcheck::RawAtomicOps& OpsFor() {
  static constexpr modelcheck::RawAtomicOps kOps{&RawLoad<T>, &RawStore<T>};
  return kOps;
}

template <typename T, bool kInstrumented>
class BasicAtomic {
  static_assert(std::is_trivially_copyable_v<T>,
                "tds::Atomic payloads cross the modelcheck boundary as raw "
                "bytes");
  static_assert(sizeof(T) <= 8,
                "tds::Atomic models values as uint64 images");

 public:
  BasicAtomic() noexcept : v_() {}
  constexpr BasicAtomic(T desired) noexcept : v_(desired) {}  // NOLINT
  BasicAtomic(const BasicAtomic&) = delete;
  BasicAtomic& operator=(const BasicAtomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    if constexpr (kInstrumented) {
      if (modelcheck::InModelRun()) {
        return Decode<T>(modelcheck::HookAtomicLoad(
            const_cast<std::atomic<T>*>(&v_), OpsFor<T>(),
            static_cast<int>(order)));
      }
    }
    return v_.load(order);
  }

  void store(T desired, std::memory_order order = std::memory_order_seq_cst) {
    if constexpr (kInstrumented) {
      if (modelcheck::InModelRun()) {
        modelcheck::HookAtomicStore(&v_, OpsFor<T>(), static_cast<int>(order),
                                    Encode<T>(desired));
        return;
      }
    }
    v_.store(desired, order);
  }

  T exchange(T desired, std::memory_order order = std::memory_order_seq_cst) {
    if constexpr (kInstrumented) {
      if (modelcheck::InModelRun()) {
        std::uint64_t ctx = Encode<T>(desired);
        bool stored = false;
        return Decode<T>(modelcheck::HookAtomicRmw(
            &v_, OpsFor<T>(), static_cast<int>(order),
            [](std::uint64_t, void* c, std::uint64_t* out) {
              *out = *static_cast<std::uint64_t*>(c);
              return true;
            },
            &ctx, &stored));
      }
    }
    return v_.exchange(desired, order);
  }

  T fetch_add(T arg, std::memory_order order = std::memory_order_seq_cst)
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  {
    if constexpr (kInstrumented) {
      if (modelcheck::InModelRun()) {
        std::uint64_t ctx = Encode<T>(arg);
        bool stored = false;
        return Decode<T>(modelcheck::HookAtomicRmw(
            &v_, OpsFor<T>(), static_cast<int>(order),
            [](std::uint64_t cur, void* c, std::uint64_t* out) {
              *out = Encode<T>(static_cast<T>(
                  Decode<T>(cur) +
                  Decode<T>(*static_cast<std::uint64_t*>(c))));
              return true;
            },
            &ctx, &stored));
      }
    }
    return v_.fetch_add(arg, order);
  }

  T fetch_sub(T arg, std::memory_order order = std::memory_order_seq_cst)
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  {
    if constexpr (kInstrumented) {
      if (modelcheck::InModelRun()) {
        std::uint64_t ctx = Encode<T>(arg);
        bool stored = false;
        return Decode<T>(modelcheck::HookAtomicRmw(
            &v_, OpsFor<T>(), static_cast<int>(order),
            [](std::uint64_t cur, void* c, std::uint64_t* out) {
              *out = Encode<T>(static_cast<T>(
                  Decode<T>(cur) -
                  Decode<T>(*static_cast<std::uint64_t*>(c))));
              return true;
            },
            &ctx, &stored));
      }
    }
    return v_.fetch_sub(arg, order);
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order order = std::memory_order_seq_cst) {
    if constexpr (kInstrumented) {
      if (modelcheck::InModelRun()) {
        struct Ctx {
          std::uint64_t expected;
          std::uint64_t desired;
        } ctx{Encode<T>(expected), Encode<T>(desired)};
        bool stored = false;
        const std::uint64_t old = modelcheck::HookAtomicRmw(
            &v_, OpsFor<T>(), static_cast<int>(order),
            [](std::uint64_t cur, void* c, std::uint64_t* out) {
              Ctx* cas = static_cast<Ctx*>(c);
              if (cur != cas->expected) return false;
              *out = cas->desired;
              return true;
            },
            &ctx, &stored);
        if (!stored) expected = Decode<T>(old);
        return stored;
      }
    }
    return v_.compare_exchange_strong(expected, desired, order);
  }

  /// Weak CAS may not fail spuriously under the model (allowed by the
  /// standard: spurious failure is a permission, not a requirement).
  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order order = std::memory_order_seq_cst) {
    if constexpr (kInstrumented) {
      if (modelcheck::InModelRun()) {
        return compare_exchange_strong(expected, desired, order);
      }
    }
    return v_.compare_exchange_weak(expected, desired, order);
  }

 private:
  std::atomic<T> v_;
};

}  // namespace atomic_internal

#ifdef TDS_MODELCHECK
template <typename T>
using Atomic = atomic_internal::BasicAtomic<T, true>;
#else
template <typename T>
using Atomic = atomic_internal::BasicAtomic<T, false>;
#endif

/// Always-instrumented variant: model-check fixtures and scheduler
/// selftests use it so they explore real interleavings in every build.
template <typename T>
using InstrumentedAtomic = atomic_internal::BasicAtomic<T, true>;

/// Never-instrumented variant: bookkeeping that must stay OUT of the model
/// even under -DTDS_MODELCHECK=ON (e.g. the chaos hit counter) — routing
/// it through the scheduler would only bloat the interleaving space.
template <typename T>
using PlainAtomic = atomic_internal::BasicAtomic<T, false>;

/// Standalone fence, same contract as the wrappers: plain
/// std::atomic_thread_fence in production, a modeled scheduling point
/// (seq_cst drains the TSO store buffer) inside a model run.
inline void AtomicFence(std::memory_order order) {
#ifdef TDS_MODELCHECK
  if (modelcheck::InModelRun()) {
    modelcheck::HookFence(static_cast<int>(order));
    return;
  }
#endif
  std::atomic_thread_fence(order);
}

/// Always-instrumented fence for model fixtures (see InstrumentedAtomic).
inline void InstrumentedAtomicFence(std::memory_order order) {
  if (modelcheck::InModelRun()) {
    modelcheck::HookFence(static_cast<int>(order));
    return;
  }
  std::atomic_thread_fence(order);
}

}  // namespace tds

#endif  // TDS_UTIL_ATOMIC_H_
