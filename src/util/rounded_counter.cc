#include "util/rounded_counter.h"

#include <cmath>

#include "util/check.h"

namespace tds {

double RoundedCounter::RoundValue(double x, int bits) {
  if (x <= 0.0 || bits <= 0) return x;
  const int exponent = std::ilogb(x);
  // Unit in the last place of a `bits`-bit mantissa whose leading bit has
  // weight 2^exponent.
  const double ulp = std::ldexp(1.0, exponent - bits + 1);
  // Round up: the stored value is in [x, x * (1 + 2^{1-bits})), matching the
  // paper's "multiply by a number between 1 and (1+beta)".
  return std::ceil(x / ulp) * ulp;
}

void RoundedCounter::Add(double amount) {
  // Additions are exact: they model arrivals accumulating in an open
  // (leaf-level) bucket. Rounding happens once per Merge — one level of the
  // paper's summation tree — otherwise the (1+beta) factors would compound
  // once per item instead of once per tree level.
  TDS_CHECK_GE(amount, 0.0);
  value_ += amount;
}

void RoundedCounter::Merge(const RoundedCounter& other) {
  value_ = RoundValue(value_ + other.value_, mantissa_bits_);
}

int RoundedCounter::StorageBits(double max_value) const {
  if (max_value < 2.0) max_value = 2.0;
  const double log_max = std::log2(max_value);
  if (mantissa_bits_ <= 0) {
    // Exact integer counter: ceil(log2(maxN + 1)) bits.
    return static_cast<int>(std::ceil(std::log2(max_value + 1.0)));
  }
  // Exponent field addresses log2(maxN) + 1 possible exponents.
  const int exponent_bits =
      static_cast<int>(std::ceil(std::log2(log_max + 1.0)));
  return mantissa_bits_ + exponent_bits;
}

}  // namespace tds
