#ifndef TDS_UTIL_RANDOM_H_
#define TDS_UTIL_RANDOM_H_

#include <cstdint>

namespace tds {

/// Mixes a 64-bit value through the SplitMix64 finalizer. Used both as a
/// standalone hash (counter-based RNG for on-the-fly sketch matrices) and as
/// the state-advance function of Rng.
uint64_t SplitMix64(uint64_t x);

/// Hashes an arbitrary-length key tuple into 64 bits by chaining SplitMix64.
/// Deterministic across runs and platforms: the p-stable sketch uses this to
/// regenerate projection-matrix entries from (seed, row, column) without
/// storing them (Section 7.1 of the paper / Indyk's method).
uint64_t HashCombine(uint64_t a, uint64_t b);
uint64_t HashCombine(uint64_t a, uint64_t b, uint64_t c);

/// Small, fast, deterministic PRNG (xoshiro256++). Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in (0, 1) — excludes both endpoints; safe for log().
  double NextOpenDouble();

  /// Uniform integer in [0, bound) for bound >= 1 (unbiased, Lemire-style).
  uint64_t NextBelow(uint64_t bound);

  /// Standard normal via Box-Muller (no cached spare; stateless per call
  /// pair is avoided for reproducibility under interleaving).
  double NextGaussian();

  /// Bernoulli(p).
  bool NextBernoulli(double p);

  /// Snapshot support: the four xoshiro state words.
  void SaveState(uint64_t out[4]) const;
  void RestoreState(const uint64_t in[4]);

 private:
  uint64_t s_[4];
};

/// Converts 64 uniform bits to a double in [0, 1).
double BitsToUnitDouble(uint64_t bits);

/// Deterministic uniform in (0,1) derived from a hashed key: the value for a
/// given (seed, index) pair never changes. Used for on-the-fly regeneration
/// of sketch randomness.
double HashedUniform(uint64_t seed, uint64_t index);

}  // namespace tds

#endif  // TDS_UTIL_RANDOM_H_
