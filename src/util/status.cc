#include "util/status.h"

namespace tds {

// Status and StatusOr are header-only; this file anchors the translation unit
// so the target always has at least one symbol from util/status.h.

}  // namespace tds
