#include "modelcheck/sched.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <utility>

#include "modelcheck/vector_clock.h"
#include "util/mutex.h"
#include "util/random.h"

namespace tds {
namespace modelcheck {

namespace {

constexpr int kController = -1;
/// Transition ids: [0, kMaxThreads) are thread steps; kFlushBase + tid is
/// "commit the oldest entry of thread tid's store buffer".
constexpr std::uint32_t kFlushBase = 64;

/// std::memory_order's integer values (relaxed=0 … seq_cst=5), as shipped
/// across hooks.h without <atomic>.
bool IsAcquire(int order) {
  return order == 1 /*consume*/ || order == 2 /*acquire*/ ||
         order == 4 /*acq_rel*/ || order == 5 /*seq_cst*/;
}
bool IsRelease(int order) { return order >= 3; }
bool IsSeqCst(int order) { return order == 5; }

enum class OpKind : std::uint8_t {
  kBegin,     ///< thread's first step (start running user code)
  kLoad,
  kStore,
  kRmw,
  kFence,
  kVarRead,
  kVarWrite,
  kPark,
  kWake,
  kPrepare,   ///< Gate::PrepareWait epoch read
  kUnpark,    ///< resume after a Gate wake
  kFlush,     ///< controller-performed store-buffer commit
};

const char* KindName(OpKind k) {
  switch (k) {
    case OpKind::kBegin: return "begin";
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kRmw: return "rmw";
    case OpKind::kFence: return "fence";
    case OpKind::kVarRead: return "var-read";
    case OpKind::kVarWrite: return "var-write";
    case OpKind::kPark: return "park";
    case OpKind::kWake: return "wake";
    case OpKind::kPrepare: return "prepare-wait";
    case OpKind::kUnpark: return "unpark";
    case OpKind::kFlush: return "flush";
  }
  return "?";
}

bool IsWriteKind(OpKind k) {
  return k == OpKind::kStore || k == OpKind::kRmw ||
         k == OpKind::kVarWrite || k == OpKind::kFlush;
}

struct OpDesc {
  OpKind kind = OpKind::kBegin;
  const void* addr = nullptr;
  int order = 5;
};

/// Sleep-set dependence: two transitions commute unless they can interfere.
/// Conservative on fences (dependent with everything) — soundness over
/// pruning power.
bool Dependent(const OpDesc& a, const OpDesc& b) {
  if (a.kind == OpKind::kFence || b.kind == OpKind::kFence) return true;
  if (a.kind == OpKind::kBegin || b.kind == OpKind::kBegin) return false;
  if (a.kind == OpKind::kUnpark || b.kind == OpKind::kUnpark) return false;
  if (a.addr == nullptr || b.addr == nullptr) return false;
  if (a.addr != b.addr) return false;
  // Gate ops: a wake mutates the gate (epoch + parked set), so it
  // interferes with every other op on the same gate; parks and prepares
  // among themselves commute.
  const bool a_gate = a.kind == OpKind::kPark || a.kind == OpKind::kWake ||
                      a.kind == OpKind::kPrepare;
  const bool b_gate = b.kind == OpKind::kPark || b.kind == OpKind::kWake ||
                      b.kind == OpKind::kPrepare;
  if (a_gate || b_gate) {
    return a.kind == OpKind::kWake || b.kind == OpKind::kWake;
  }
  return IsWriteKind(a.kind) || IsWriteKind(b.kind);
}

/// Internal unwind token for halting model threads and failing schedules;
/// never escapes Explore/Replay.
struct HaltError {};

struct StoreEntry {
  void* obj = nullptr;
  const RawAtomicOps* ops = nullptr;
  std::uint64_t value = 0;
  int order = 0;
  VectorClock release_clock;  ///< writer's clock, if the store releases
};

struct ModelThread {
  enum Phase : std::uint8_t { kNew, kReady, kRunning, kParked, kDone };

  std::function<void()> fn;
  std::thread os;
  Phase phase = kNew;
  OpDesc pending;  ///< announced next op, valid in kReady
  const void* parked_on = nullptr;
  VectorClock clock;
  std::deque<StoreEntry> buffer;  ///< TSO store buffer, oldest first
};

struct Transition {
  std::uint32_t id = 0;
  OpDesc op;
  int tid = kController;  ///< owning thread for thread steps, else buffer owner
  bool is_flush = false;
};

/// DFS frame: one scheduling decision, persisted across the stateless
/// re-executions so backtracking can revisit it with a different choice.
struct DfsNode {
  std::vector<Transition> enabled;
  std::uint32_t chosen = 0;
  std::set<std::uint32_t> sleep;  ///< entry sleep set + explored siblings
  int preemptions_before = 0;
  int prev_running = kController;
};

thread_local Run* tl_run = nullptr;
thread_local int tl_tid = kController;
thread_local Run* tl_controller_run = nullptr;

}  // namespace

Run* ActiveRun() { return tl_run; }

/// Exploration state that outlives individual schedules.
struct Explorer {
  Options opts;
  const std::vector<std::uint32_t>* replay = nullptr;

  std::vector<DfsNode> stack;           // DFS mode
  std::uint64_t schedule_index = 0;     // random mode ordinal
  std::uint64_t schedules = 0;
  std::uint64_t distinct = 0;
  std::uint64_t transitions = 0;
  std::uint64_t pruned = 0;
  std::uint64_t attempts = 0;
  std::unordered_set<std::uint64_t> hashes;
  bool done = false;
  bool exhausted = false;
};

struct Run::Impl {
  explicit Impl(Explorer* explorer) : ex(explorer) {}

  Explorer* ex;
  Run* self = nullptr;

  Mutex mu;
  CondVar cv;
  int active = kController;  // baton: which thread may run (guarded by mu)
  bool halt = false;         // unwind everything (guarded by mu)

  std::vector<std::unique_ptr<ModelThread>> threads;

  std::map<const void*, VectorClock> atomic_msg;  // release messages
  std::map<const void*, VectorClock> gate_msg;    // wake → unpark edges
  std::map<const void*, std::uint64_t> gate_epoch;  // eventcount generations
  VectorClock fence_msg;  // release-fence bulletin (acquire fences join it)
  VectorClock sc_clock;   // seq_cst-fence global clock

  struct VarMeta {
    bool has_write = false;
    std::size_t wtid = 0;
    std::uint32_t wts = 0;
    std::vector<std::pair<std::size_t, std::uint32_t>> reads;  // epochs
    const char* name = "var";
  };
  std::map<const void*, VarMeta> vars;

  std::vector<std::uint32_t> trace;  // executed transition ids
  std::uint64_t steps = 0;
  int running = kController;  // last thread-step's tid (preemption account)
  int preemptions = 0;
  bool schedule_failed = false;
  bool schedule_pruned = false;
  std::string failure;
  bool awaited = false;

  // ---- baton protocol ----

  /// Model thread: announce `op`, hand the baton to the controller, block
  /// until granted (the scheduler chose this transition) or halted.
  void YieldToScheduler(int tid, OpDesc op) {
    MutexLock lock(mu);
    ModelThread& t = *threads[static_cast<std::size_t>(tid)];
    t.pending = op;
    t.phase = ModelThread::kReady;
    active = kController;
    cv.NotifyAll();
    while (!halt && active != tid) cv.Wait(mu);
    if (halt) throw HaltError{};
    t.phase = ModelThread::kRunning;
  }

  /// Controller: hand the baton to `tid`, wait for it to come back (the
  /// thread announced its next op, parked, or finished).
  void GrantAndWait(int tid) {
    MutexLock lock(mu);
    active = tid;
    cv.NotifyAll();
    while (active != kController) cv.Wait(mu);
  }

  void RecordFailure(std::string message) {
    MutexLock lock(mu);
    if (!schedule_failed) {
      schedule_failed = true;
      failure = std::move(message);
    }
  }

  void HaltAllAndJoin() {
    {
      MutexLock lock(mu);
      halt = true;
      cv.NotifyAll();
    }
    for (auto& t : threads) {
      if (t->os.joinable()) t->os.join();
    }
  }

  // ---- memory-system semantics (run by whoever holds the baton) ----

  void CommitStore(const StoreEntry& e) {
    e.ops->store(e.obj, e.value);
    VectorClock& msg = atomic_msg[e.obj];
    if (IsRelease(e.order)) {
      msg = e.release_clock;  // fresh release message
    } else {
      msg.Clear();  // a relaxed store breaks the release sequence
    }
  }

  void DrainBuffer(int tid) {
    ModelThread& t = *threads[static_cast<std::size_t>(tid)];
    while (!t.buffer.empty()) {
      CommitStore(t.buffer.front());
      t.buffer.pop_front();
    }
  }

  std::uint64_t ExecLoad(int tid, void* obj, const RawAtomicOps& ops,
                         int order) {
    ModelThread& t = *threads[static_cast<std::size_t>(tid)];
    t.clock.Tick(static_cast<std::size_t>(tid));
    // TSO store forwarding: the youngest own buffered store wins.
    for (auto it = t.buffer.rbegin(); it != t.buffer.rend(); ++it) {
      if (it->obj == obj) return it->value;
    }
    const std::uint64_t value = ops.load(obj);
    if (IsAcquire(order)) {
      auto it = atomic_msg.find(obj);
      if (it != atomic_msg.end()) t.clock.Join(it->second);
    }
    return value;
  }

  void ExecStore(int tid, void* obj, const RawAtomicOps& ops, int order,
                 std::uint64_t value) {
    ModelThread& t = *threads[static_cast<std::size_t>(tid)];
    t.clock.Tick(static_cast<std::size_t>(tid));
    StoreEntry e;
    e.obj = obj;
    e.ops = &ops;
    e.value = value;
    e.order = order;
    if (IsRelease(order)) e.release_clock = t.clock;
    if (ex->opts.tso && !IsSeqCst(order)) {
      t.buffer.push_back(std::move(e));  // invisible until a flush step
      return;
    }
    DrainBuffer(tid);  // a seq_cst store drains prior buffered stores
    CommitStore(e);
  }

  std::uint64_t ExecRmw(int tid, void* obj, const RawAtomicOps& ops,
                        int order, RmwModifyFn modify, void* ctx,
                        bool* stored) {
    ModelThread& t = *threads[static_cast<std::size_t>(tid)];
    t.clock.Tick(static_cast<std::size_t>(tid));
    DrainBuffer(tid);  // RMWs act on the committed latest value
    const std::uint64_t current = ops.load(obj);
    VectorClock& msg = atomic_msg[obj];
    if (IsAcquire(order)) t.clock.Join(msg);
    std::uint64_t next = 0;
    const bool do_store = modify(current, ctx, &next);
    if (do_store) {
      ops.store(obj, next);
      // A releasing RMW joins (not replaces) the message: it extends the
      // release sequence it read from; a relaxed RMW leaves it intact.
      if (IsRelease(order)) msg.Join(t.clock);
    }
    *stored = do_store;
    return current;
  }

  void ExecFence(int tid, int order) {
    ModelThread& t = *threads[static_cast<std::size_t>(tid)];
    t.clock.Tick(static_cast<std::size_t>(tid));
    if (IsSeqCst(order)) {
      DrainBuffer(tid);
      t.clock.Join(sc_clock);
      sc_clock.Join(t.clock);
    }
    if (IsRelease(order)) fence_msg.Join(t.clock);
    if (IsAcquire(order)) t.clock.Join(fence_msg);
  }

  [[noreturn]] void FailRace(const char* kind, const VarMeta& m, int tid,
                             std::size_t other_tid) {
    std::ostringstream os;
    os << "data race: " << kind << " of '" << m.name << "' by thread " << tid
       << " is concurrent with thread " << other_tid
       << " (no happens-before edge — missing release/acquire pairing?)";
    self->Fail(os.str());
  }

  void ExecVarRead(int tid, const void* addr, const char* name) {
    ModelThread& t = *threads[static_cast<std::size_t>(tid)];
    t.clock.Tick(static_cast<std::size_t>(tid));
    VarMeta& m = vars[addr];
    m.name = name;
    if (m.has_write &&
        !t.clock.Covers(m.wtid, m.wts)) {
      FailRace("read", m, tid, m.wtid);
    }
    for (auto& read : m.reads) {
      if (read.first == static_cast<std::size_t>(tid)) {
        read.second = t.clock.Get(read.first);
        return;
      }
    }
    m.reads.emplace_back(static_cast<std::size_t>(tid),
                         t.clock.Get(static_cast<std::size_t>(tid)));
  }

  void ExecVarWrite(int tid, const void* addr, const char* name) {
    ModelThread& t = *threads[static_cast<std::size_t>(tid)];
    t.clock.Tick(static_cast<std::size_t>(tid));
    VarMeta& m = vars[addr];
    m.name = name;
    if (m.has_write && !t.clock.Covers(m.wtid, m.wts)) {
      FailRace("write", m, tid, m.wtid);
    }
    for (const auto& read : m.reads) {
      if (read.first != static_cast<std::size_t>(tid) &&
          !t.clock.Covers(read.first, read.second)) {
        FailRace("write", m, tid, read.first);
      }
    }
    m.has_write = true;
    m.wtid = static_cast<std::size_t>(tid);
    m.wts = t.clock.Get(static_cast<std::size_t>(tid));
    m.reads.clear();
  }

  /// Wake every thread currently parked on `gate` (a wake with no parked
  /// thread is lost, like NotifyOne with no waiter).
  void ExecWake(int tid, const void* gate) {
    ModelThread& waker = *threads[static_cast<std::size_t>(tid)];
    waker.clock.Tick(static_cast<std::size_t>(tid));
    gate_msg[gate].Join(waker.clock);
    ++gate_epoch[gate];
    MutexLock lock(mu);
    for (auto& t : threads) {
      if (t->phase == ModelThread::kParked && t->parked_on == gate) {
        t->phase = ModelThread::kReady;
        t->parked_on = nullptr;
        t->pending = OpDesc{OpKind::kUnpark, gate, 0};
      }
    }
  }

  /// Second half of Park: the park transition was granted; become parked
  /// and hand the baton back without announcing a pending op. Returns once
  /// a Wake made this thread ready again and the scheduler granted its
  /// unpark transition.
  void ParkAndWait(int tid, const void* gate) {
    ModelThread& t = *threads[static_cast<std::size_t>(tid)];
    t.clock.Tick(static_cast<std::size_t>(tid));
    {
      MutexLock lock(mu);
      t.phase = ModelThread::kParked;
      t.parked_on = gate;
      active = kController;
      cv.NotifyAll();
      while (!halt && active != tid) cv.Wait(mu);
      if (halt) throw HaltError{};
      t.phase = ModelThread::kRunning;
    }
    // Unpark semantics: the wake that released us happens-before here.
    t.clock.Tick(static_cast<std::size_t>(tid));
    auto it = gate_msg.find(gate);
    if (it != gate_msg.end()) t.clock.Join(it->second);
  }

  // ---- controller: schedule driving ----

  std::vector<Transition> ComputeEnabled() {
    std::vector<Transition> enabled;
    for (std::size_t tid = 0; tid < threads.size(); ++tid) {
      if (threads[tid]->phase == ModelThread::kReady) {
        Transition tr;
        tr.id = static_cast<std::uint32_t>(tid);
        tr.op = threads[tid]->pending;
        tr.tid = static_cast<int>(tid);
        enabled.push_back(tr);
      }
    }
    if (ex->opts.tso) {
      for (std::size_t tid = 0; tid < threads.size(); ++tid) {
        if (!threads[tid]->buffer.empty()) {
          Transition tr;
          tr.id = kFlushBase + static_cast<std::uint32_t>(tid);
          tr.op = OpDesc{OpKind::kFlush, threads[tid]->buffer.front().obj, 0};
          tr.tid = static_cast<int>(tid);
          tr.is_flush = true;
          enabled.push_back(tr);
        }
      }
    }
    return enabled;
  }

  bool AllDone() const {
    for (const auto& t : threads) {
      if (t->phase != ModelThread::kDone) return false;
    }
    return true;
  }

  /// Would choosing `tr` preempt a still-runnable thread, and is that
  /// within the bound? (Flush steps model the memory system, not a thread
  /// switch, and never count.)
  bool PreemptionOk(const Transition& tr, int prev_running,
                    int preemptions_before,
                    const std::vector<Transition>& enabled) const {
    if (ex->opts.preemption_bound < 0) return true;
    if (tr.is_flush || prev_running == kController) return true;
    if (tr.tid == prev_running) return true;
    bool prev_enabled = false;
    for (const auto& e : enabled) {
      if (!e.is_flush && e.tid == prev_running) {
        prev_enabled = true;
        break;
      }
    }
    if (!prev_enabled) return true;  // forced switch, not a preemption
    return preemptions_before + 1 <= ex->opts.preemption_bound;
  }

  static const Transition* FindById(const std::vector<Transition>& enabled,
                                    std::uint32_t id) {
    for (const auto& tr : enabled) {
      if (tr.id == id) return &tr;
    }
    return nullptr;
  }

  /// Deterministic choice order: keep the running thread running when
  /// possible (fewest preemptions first), then ascending transition id.
  static const Transition* PickPreferred(
      const std::vector<Transition>& avail, int prev_running) {
    for (const auto& tr : avail) {
      if (!tr.is_flush && tr.tid == prev_running) return &tr;
    }
    return avail.empty() ? nullptr : &avail.front();
  }

  Transition ChooseDfs(const std::vector<Transition>& enabled) {
    Explorer& e = *ex;
    const std::size_t depth = trace.size();
    if (depth < e.stack.size()) {
      // Prefix replay: re-issue the recorded decision.
      const DfsNode& node = e.stack[depth];
      const Transition* tr = FindById(enabled, node.chosen);
      if (tr == nullptr) {
        RecordFailure("internal: DFS replay diverged (body nondeterminism?)");
        throw HaltError{};
      }
      return *tr;
    }
    // New frontier node: inherit the parent's sleep set minus everything
    // dependent with the transition the parent just executed.
    DfsNode node;
    node.enabled = enabled;
    node.preemptions_before = preemptions;
    node.prev_running = running;
    if (e.opts.sleep_sets && depth > 0) {
      const DfsNode& parent = e.stack[depth - 1];
      const Transition* executed = FindById(parent.enabled, parent.chosen);
      for (std::uint32_t id : parent.sleep) {
        const Transition* slept = FindById(parent.enabled, id);
        if (slept != nullptr && executed != nullptr &&
            !Dependent(slept->op, executed->op)) {
          node.sleep.insert(id);
        }
      }
    }
    std::vector<Transition> avail;
    for (const auto& tr : enabled) {
      if (node.sleep.count(tr.id) != 0) continue;
      if (!PreemptionOk(tr, running, preemptions, enabled)) continue;
      avail.push_back(tr);
    }
    if (avail.empty()) {
      // Every enabled transition sleeps (or exceeds the bound): this
      // schedule is equivalent to one already explored — prune it.
      schedule_pruned = true;
      throw HaltError{};
    }
    const Transition chosen = *PickPreferred(avail, running);
    node.chosen = chosen.id;
    e.stack.push_back(std::move(node));
    return chosen;
  }

  Transition ChooseRandom(const std::vector<Transition>& enabled,
                          std::uint64_t* rng) {
    std::vector<Transition> avail;
    for (const auto& tr : enabled) {
      if (PreemptionOk(tr, running, preemptions, enabled)) avail.push_back(tr);
    }
    if (avail.empty()) avail = enabled;
    *rng = SplitMix64(*rng);
    return avail[static_cast<std::size_t>(*rng % avail.size())];
  }

  Transition ChooseReplay(const std::vector<Transition>& enabled) {
    const std::vector<std::uint32_t>& schedule = *ex->replay;
    if (trace.size() >= schedule.size()) {
      RecordFailure("replay: schedule exhausted before the run completed");
      throw HaltError{};
    }
    const Transition* tr = FindById(enabled, schedule[trace.size()]);
    if (tr == nullptr) {
      std::ostringstream os;
      os << "replay: transition " << schedule[trace.size()] << " at step "
         << trace.size() << " is not enabled";
      RecordFailure(os.str());
      throw HaltError{};
    }
    return *tr;
  }

  void ExecuteTransition(const Transition& tr) {
    trace.push_back(tr.id);
    ++steps;
    if (tr.is_flush) {
      ModelThread& t = *threads[static_cast<std::size_t>(tr.tid)];
      CommitStore(t.buffer.front());
      t.buffer.pop_front();
      return;
    }
    if (tr.tid != running && running != kController &&
        static_cast<std::size_t>(running) < threads.size() &&
        threads[static_cast<std::size_t>(running)]->phase ==
            ModelThread::kReady) {
      ++preemptions;
    }
    running = tr.tid;
    GrantAndWait(tr.tid);
  }

  [[noreturn]] void FailDeadlock() {
    std::ostringstream os;
    os << "deadlock: no enabled transition;";
    for (std::size_t tid = 0; tid < threads.size(); ++tid) {
      const ModelThread& t = *threads[tid];
      if (t.phase == ModelThread::kDone) continue;
      os << " thread " << tid
         << (t.phase == ModelThread::kParked
                 ? " parked (missed wake beyond the bounded-park model?)"
                 : " blocked");
      if (t.phase == ModelThread::kReady) {
        os << " at " << KindName(t.pending.kind);
      }
      os << ";";
    }
    RecordFailure(os.str());
    throw HaltError{};
  }

  void Await() {
    awaited = true;
    {
      // Wait for every spawned thread to reach its first scheduling point.
      MutexLock lock(mu);
      for (;;) {
        bool all_announced = active == kController;
        for (const auto& t : threads) {
          if (t->phase == ModelThread::kNew) all_announced = false;
        }
        if (all_announced) break;
        cv.Wait(mu);
      }
    }
    std::uint64_t rng =
        SplitMix64(HashCombine(ex->opts.seed, ex->schedule_index));
    for (;;) {
      if (AllDone()) break;
      const std::vector<Transition> enabled = ComputeEnabled();
      if (enabled.empty()) FailDeadlock();
      if (steps >= ex->opts.max_steps) {
        RecordFailure("livelock: per-schedule transition budget exceeded");
        throw HaltError{};
      }
      Transition chosen;
      if (ex->replay != nullptr) {
        chosen = ChooseReplay(enabled);
      } else if (ex->opts.mode == Options::Mode::kRandom) {
        chosen = ChooseRandom(enabled, &rng);
      } else {
        chosen = ChooseDfs(enabled);
      }
      ExecuteTransition(chosen);
      if (schedule_failed) throw HaltError{};
    }
    // Write-back: commit leftover buffered stores (tid order, FIFO within
    // a thread) so the controller's post-Await reads see final values.
    for (std::size_t tid = 0; tid < threads.size(); ++tid) {
      DrainBuffer(static_cast<int>(tid));
    }
    for (auto& t : threads) {
      if (t->os.joinable()) t->os.join();
    }
  }
};

namespace {

void ThreadMain(Run::Impl* impl, int tid) {
  tl_run = impl->self;
  tl_tid = tid;
  try {
    // First lock happens inside YieldToScheduler; only after the kBegin
    // grant is the threads vector stable (Spawn has finished), so the
    // reference is taken after it.
    impl->YieldToScheduler(tid, OpDesc{OpKind::kBegin, nullptr, 0});
    ModelThread& t = *impl->threads[static_cast<std::size_t>(tid)];
    t.clock.Tick(static_cast<std::size_t>(tid));
    t.fn();
  } catch (const HaltError&) {
    // Failure already recorded (or halt requested); just unwind.
  }
  tl_run = nullptr;
  MutexLock lock(impl->mu);
  impl->threads[static_cast<std::size_t>(tid)]->phase = ModelThread::kDone;
  impl->active = kController;
  impl->cv.NotifyAll();
}

std::uint64_t HashTrace(const std::vector<std::uint32_t>& trace) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (std::uint32_t id : trace) h = HashCombine(h, id);
  return h;
}

}  // namespace

void Run::Spawn(std::function<void()> fn) {
  Impl* im = impl_;
  if (im->awaited) Fail("Spawn after Await is not supported");
  if (im->threads.size() >= static_cast<std::size_t>(kMaxThreads)) {
    Fail("too many model threads");
  }
  auto t = std::make_unique<ModelThread>();
  t->fn = std::move(fn);
  // The vector is mutated under mu: already-spawned threads index it from
  // inside YieldToScheduler (which holds mu) until Await starts granting.
  MutexLock lock(im->mu);
  const int tid = static_cast<int>(im->threads.size());
  im->threads.push_back(std::move(t));
  im->threads.back()->os = std::thread(ThreadMain, im, tid);
}

void Run::Await() { impl_->Await(); }

std::uint64_t Run::OnAtomicLoad(void* obj, const RawAtomicOps& ops,
                                int order) {
  impl_->YieldToScheduler(tl_tid, OpDesc{OpKind::kLoad, obj, order});
  return impl_->ExecLoad(tl_tid, obj, ops, order);
}

void Run::OnAtomicStore(void* obj, const RawAtomicOps& ops, int order,
                        std::uint64_t value) {
  impl_->YieldToScheduler(tl_tid, OpDesc{OpKind::kStore, obj, order});
  impl_->ExecStore(tl_tid, obj, ops, order, value);
}

std::uint64_t Run::OnAtomicRmw(void* obj, const RawAtomicOps& ops, int order,
                               RmwModifyFn modify, void* ctx, bool* stored) {
  impl_->YieldToScheduler(tl_tid, OpDesc{OpKind::kRmw, obj, order});
  return impl_->ExecRmw(tl_tid, obj, ops, order, modify, ctx, stored);
}

void Run::OnFence(int order) {
  impl_->YieldToScheduler(tl_tid, OpDesc{OpKind::kFence, nullptr, order});
  impl_->ExecFence(tl_tid, order);
}

void Run::OnVarRead(const void* addr, const char* name) {
  impl_->YieldToScheduler(tl_tid, OpDesc{OpKind::kVarRead, addr, 0});
  impl_->ExecVarRead(tl_tid, addr, name);
}

void Run::OnVarWrite(const void* addr, const char* name) {
  impl_->YieldToScheduler(tl_tid, OpDesc{OpKind::kVarWrite, addr, 0});
  impl_->ExecVarWrite(tl_tid, addr, name);
}

void Run::OnPark(const void* gate) {
  impl_->YieldToScheduler(tl_tid, OpDesc{OpKind::kPark, gate, 0});
  impl_->ParkAndWait(tl_tid, gate);
}

void Run::OnWake(const void* gate) {
  impl_->YieldToScheduler(tl_tid, OpDesc{OpKind::kWake, gate, 0});
  impl_->ExecWake(tl_tid, gate);
}

std::uint64_t Run::OnGatePrepare(const void* gate) {
  impl_->YieldToScheduler(tl_tid, OpDesc{OpKind::kPrepare, gate, 0});
  ModelThread& t = *impl_->threads[static_cast<std::size_t>(tl_tid)];
  t.clock.Tick(static_cast<std::size_t>(tl_tid));
  return impl_->gate_epoch[gate];
}

void Run::OnGateCommitWait(const void* gate, std::uint64_t epoch) {
  impl_->YieldToScheduler(tl_tid, OpDesc{OpKind::kPark, gate, 0});
  // A wake since PrepareWait makes the commit a no-op — the notify-under-
  // lock discipline the eventcount models; only a still-current epoch
  // actually parks.
  if (impl_->gate_epoch[gate] != epoch) {
    ModelThread& t = *impl_->threads[static_cast<std::size_t>(tl_tid)];
    t.clock.Tick(static_cast<std::size_t>(tl_tid));
    auto it = impl_->gate_msg.find(gate);
    if (it != impl_->gate_msg.end()) t.clock.Join(it->second);
    return;
  }
  impl_->ParkAndWait(tl_tid, gate);
}

void Run::Fail(std::string message) {
  impl_->RecordFailure(std::move(message));
  throw HaltError{};
}

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line) {
  std::ostringstream os;
  os << "MC_CHECK failed: " << expr << " at " << file << ":" << line;
  if (Run* run = tl_run) run->Fail(os.str());
  if (Run* run = tl_controller_run) run->Fail(os.str());
  throw std::logic_error(os.str());
}

// ---- hooks (src/util/atomic.h entry points) ----

bool InModelRun() { return tl_run != nullptr; }

std::uint64_t HookAtomicLoad(void* obj, const RawAtomicOps& ops, int order) {
  return tl_run->OnAtomicLoad(obj, ops, order);
}

void HookAtomicStore(void* obj, const RawAtomicOps& ops, int order,
                     std::uint64_t value) {
  tl_run->OnAtomicStore(obj, ops, order, value);
}

std::uint64_t HookAtomicRmw(void* obj, const RawAtomicOps& ops, int order,
                            RmwModifyFn modify, void* ctx, bool* stored) {
  return tl_run->OnAtomicRmw(obj, ops, order, modify, ctx, stored);
}

void HookFence(int order) { tl_run->OnFence(order); }

// ---- exploration driver ----

Result ExploreImpl(const Options& options,
                   const std::vector<std::uint32_t>* replay,
                   const std::function<void(Run&)>& body) {
  Explorer ex;
  ex.opts = options;
  ex.replay = replay;
  Result result;
  // Hard cap on attempts (schedules + prunes) so a pathological model
  // cannot loop forever; generous enough that real suites never hit it.
  const std::uint64_t max_attempts =
      options.max_schedules * 16 + 65536;
  while (!ex.done) {
    ++ex.attempts;
    Run::Impl impl(&ex);
    Run run(&impl);
    impl.self = &run;
    tl_controller_run = &run;
    bool threw = false;
    try {
      body(run);
      if (!impl.awaited) impl.Await();
    } catch (const HaltError&) {
      threw = true;
    }
    tl_controller_run = nullptr;
    impl.HaltAllAndJoin();
    ex.transitions += impl.steps;

    if (impl.schedule_failed) {
      result.failed = true;
      result.failure = impl.failure;
      result.failing_schedule = impl.trace;
      result.failing_index =
          replay != nullptr ? 0
          : options.mode == Options::Mode::kRandom ? ex.schedule_index
                                                   : ex.schedules;
      break;
    }
    if (impl.schedule_pruned) {
      ++ex.pruned;
    } else {
      (void)threw;  // completed (threw only on fail/prune paths)
      ++ex.schedules;
      if (ex.hashes.insert(HashTrace(impl.trace)).second) ++ex.distinct;
    }

    // Advance to the next schedule.
    if (replay != nullptr) {
      ex.done = true;
    } else if (options.mode == Options::Mode::kRandom) {
      ++ex.schedule_index;
      if (ex.schedules >= options.max_schedules) ex.done = true;
    } else {
      if (ex.schedules >= options.max_schedules) {
        ex.done = true;
      } else {
        // DFS backtrack: the explored choice goes to sleep; revisit the
        // deepest node with a live alternative.
        bool advanced = false;
        while (!ex.stack.empty()) {
          DfsNode& node = ex.stack.back();
          node.sleep.insert(node.chosen);
          std::vector<Transition> avail;
          for (const auto& tr : node.enabled) {
            if (node.sleep.count(tr.id) != 0) continue;
            if (!impl.PreemptionOk(tr, node.prev_running,
                                   node.preemptions_before, node.enabled)) {
              continue;
            }
            avail.push_back(tr);
          }
          if (!avail.empty()) {
            node.chosen =
                Run::Impl::PickPreferred(avail, node.prev_running)->id;
            advanced = true;
            break;
          }
          ex.stack.pop_back();
        }
        if (!advanced) {
          ex.done = true;
          ex.exhausted = true;
        }
      }
    }
    if (ex.attempts >= max_attempts) ex.done = true;
  }
  result.schedules = ex.schedules;
  result.distinct = ex.distinct;
  result.transitions = ex.transitions;
  result.sleep_pruned = ex.pruned;
  result.exhausted = ex.exhausted && !result.failed;
  return result;
}

Result Explore(const Options& options,
               const std::function<void(Run&)>& body) {
  return ExploreImpl(options, nullptr, body);
}

Result Replay(const Options& options,
              const std::vector<std::uint32_t>& schedule,
              const std::function<void(Run&)>& body) {
  return ExploreImpl(options, &schedule, body);
}

}  // namespace modelcheck
}  // namespace tds
