#ifndef TDS_MODELCHECK_HOOKS_H_
#define TDS_MODELCHECK_HOOKS_H_

#include <cstdint>

namespace tds {
namespace modelcheck {

/// The narrow waist between `tds::Atomic<T>` (src/util/atomic.h) and the
/// model-check scheduler (src/modelcheck/sched.{h,cc}). Kept to plain
/// function declarations and POD argument types so atomic.h — included by
/// every hot-path header — pulls in no scheduler machinery; sched.cc owns
/// the implementations.
///
/// Values cross this boundary as zero-extended uint64 images (the wrappers
/// static_assert trivially-copyable and sizeof ≤ 8), and memory orders as
/// the integer value of std::memory_order so this header needs no <atomic>.

/// Type-erased access to the wrapper's underlying std::atomic<T>. `load`
/// and `store` are relaxed on the real atomic: under the scheduler exactly
/// one model thread runs at a time, so these are data-race-free; ordering
/// semantics are modeled by the scheduler, not delegated to the hardware.
struct RawAtomicOps {
  std::uint64_t (*load)(const void* obj);
  void (*store)(void* obj, std::uint64_t value);
};

/// Computes an RMW's new value from the committed one. Writes the result
/// through `*out_new` and returns whether to store it (false models a
/// failed compare_exchange). `ctx` is the wrapper-side closure state.
using RmwModifyFn = bool (*)(std::uint64_t current, void* ctx,
                             std::uint64_t* out_new);

/// True iff the calling thread is a model thread of an active exploration.
/// Production-mode wrappers never call this; TDS_MODELCHECK-mode wrappers
/// branch on it so ordinary tests in a modelcheck build still run on plain
/// std::atomic.
bool InModelRun();

/// Scheduling points. Each announces the operation (address + memory-order
/// metadata), blocks until the scheduler picks this thread, then performs
/// the operation against the modeled memory system (TSO store buffers +
/// happens-before clocks) and returns.
std::uint64_t HookAtomicLoad(void* obj, const RawAtomicOps& ops, int order);
void HookAtomicStore(void* obj, const RawAtomicOps& ops, int order,
                     std::uint64_t value);
/// Returns the old (committed) value; *stored reports whether the modify
/// function asked for the write (compare_exchange success bit).
std::uint64_t HookAtomicRmw(void* obj, const RawAtomicOps& ops, int order,
                            RmwModifyFn modify, void* ctx, bool* stored);
void HookFence(int order);

}  // namespace modelcheck
}  // namespace tds

#endif  // TDS_MODELCHECK_HOOKS_H_
