#ifndef TDS_MODELCHECK_VECTOR_CLOCK_H_
#define TDS_MODELCHECK_VECTOR_CLOCK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tds {
namespace modelcheck {

/// Vector clock over model-thread ids, the happens-before algebra of the
/// model checker (docs/CORRECTNESS.md, "Model checking"). Component `t`
/// counts the steps of thread `t` that the clock's owner has synchronized
/// with: release stores publish the writer's clock as the location's
/// message, acquire loads join the message into the reader, and two plain
/// accesses race exactly when neither side's epoch is covered by the
/// other's clock. Clocks grow on demand so the checker never fixes a
/// thread-count ceiling.
class VectorClock {
 public:
  VectorClock() = default;

  std::uint32_t Get(std::size_t tid) const {
    return tid < c_.size() ? c_[tid] : 0;
  }

  void Set(std::size_t tid, std::uint32_t value) {
    Grow(tid);
    c_[tid] = value;
  }

  /// Advance the owner's own component (one per executed step).
  void Tick(std::size_t tid) {
    Grow(tid);
    ++c_[tid];
  }

  /// Pointwise maximum: after Join(o) the owner has synchronized with
  /// everything either clock had synchronized with.
  void Join(const VectorClock& other) {
    if (other.c_.size() > c_.size()) c_.resize(other.c_.size(), 0);
    for (std::size_t i = 0; i < other.c_.size(); ++i) {
      if (other.c_[i] > c_[i]) c_[i] = other.c_[i];
    }
  }

  /// Epoch test: does the single event (tid, ts) happen-before this clock?
  bool Covers(std::size_t tid, std::uint32_t ts) const {
    return ts <= Get(tid);
  }

  /// Pointwise ≤: every event this clock knows of, `other` knows too.
  bool HappensBefore(const VectorClock& other) const {
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] > other.Get(i)) return false;
    }
    return true;
  }

  /// Neither clock covers the other — the defining condition of a race
  /// between the two owners' latest events.
  bool ConcurrentWith(const VectorClock& other) const {
    return !HappensBefore(other) && !other.HappensBefore(*this);
  }

  void Clear() { c_.clear(); }

  std::size_t size() const { return c_.size(); }

 private:
  void Grow(std::size_t tid) {
    if (tid >= c_.size()) c_.resize(tid + 1, 0);
  }

  std::vector<std::uint32_t> c_;
};

}  // namespace modelcheck
}  // namespace tds

#endif  // TDS_MODELCHECK_VECTOR_CLOCK_H_
