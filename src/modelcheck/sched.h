#ifndef TDS_MODELCHECK_SCHED_H_
#define TDS_MODELCHECK_SCHED_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "modelcheck/hooks.h"

namespace tds {
namespace modelcheck {

/// tds::modelcheck — a bounded systematic concurrency model checker
/// (docs/CORRECTNESS.md, "Model checking"). A test body spawns a handful of
/// model threads whose every instrumented operation (`tds::Atomic` /
/// `tds::InstrumentedAtomic` access, `modelcheck::Var` access, `Gate` park/wake,
/// fences) is a scheduling point: the thread announces the operation with
/// its memory-order metadata and blocks until the scheduler grants it the
/// single execution baton. The scheduler then enumerates interleavings —
/// exhaustively (DFS with sleep-set pruning and an optional CHESS-style
/// preemption bound) or randomly by seed — re-running the body once per
/// schedule, stateless-model-checking style.
///
/// The memory system is modeled, not delegated to the hardware:
///  - TSO store buffers (Options::tso): non-seq_cst stores sit in a
///    per-thread FIFO buffer, invisible to other threads until a flush —
///    itself an explorable transition — while seq_cst stores, RMWs and
///    seq_cst fences drain the buffer first. This is what catches a
///    demoted Dekker handshake: with both stores buffered, both sides can
///    read the other's flag as stale 0, which sequential-consistency-only
///    interleaving can never exhibit.
///  - Vector-clock happens-before (vector_clock.h): release stores publish
///    the writer's clock as the location's message, acquire loads join it,
///    and `Var` (plain, non-atomic data) accesses are race-checked against
///    those clocks — so dropping the release off an RCU pointer publish
///    surfaces as a data race on the pointee's fields.
///
/// Failures (MC_CHECK, data race, deadlock, step-budget livelock) stop the
/// exploration and report the exact transition sequence; Replay() re-runs
/// it, and random-mode failures reproduce from (seed, failing_index).

class Run;

/// Exploration knobs. Defaults suit small protocol models (2–4 threads,
/// tens of transitions).
struct Options {
  enum class Mode : std::uint8_t {
    kDfs,     ///< systematic DFS over schedules, sleep-set pruned
    kRandom,  ///< max_schedules seeded-random schedules
  };

  Mode mode = Mode::kDfs;
  /// Stop after this many completed schedules (DFS may finish earlier —
  /// see Result::exhausted).
  std::uint64_t max_schedules = 1000;
  /// CHESS-style bound: max times the scheduler switches away from a
  /// still-enabled thread. -1 = unbounded.
  int preemption_bound = -1;
  /// Seed for kRandom schedule generation; (seed, schedule index) fully
  /// determines a schedule.
  std::uint64_t seed = 1;
  /// Per-schedule transition budget; exceeding it reports a livelock.
  std::uint64_t max_steps = 20000;
  /// Model TSO store buffers (see file comment). Off = every store commits
  /// at its program point (sequential consistency over the interleaving).
  bool tso = false;
  /// DFS sleep-set pruning; disable to measure the pruning against the
  /// full schedule space (the soundness test does).
  bool sleep_sets = true;
};

struct Result {
  std::uint64_t schedules = 0;        ///< completed executions
  std::uint64_t distinct = 0;         ///< unique transition sequences seen
  std::uint64_t transitions = 0;      ///< total transitions executed
  std::uint64_t sleep_pruned = 0;     ///< schedules cut by sleep sets
  bool exhausted = false;             ///< DFS covered the whole (bounded) space
  bool failed = false;
  std::string failure;                ///< human-readable failure description
  std::vector<std::uint32_t> failing_schedule;  ///< transition ids, for Replay
  std::uint64_t failing_index = 0;    ///< schedule ordinal (random replay)
};

/// Runs `body` once per schedule until the space or the budget is
/// exhausted or a schedule fails. The body must be deterministic apart
/// from scheduling: construct fresh state, Spawn the model threads, call
/// Await(), then MC_CHECK final-state invariants.
Result Explore(const Options& options,
               const std::function<void(Run&)>& body);

/// Re-executes exactly one schedule (e.g. Result::failing_schedule).
Result Replay(const Options& options,
              const std::vector<std::uint32_t>& schedule,
              const std::function<void(Run&)>& body);

/// The calling model thread's active run, or nullptr outside one (then
/// instrumented types fall through to their plain behavior).
Run* ActiveRun();

/// One schedule's execution context. Created by Explore per schedule;
/// tests only call Spawn/Await. The On* members are the instrumentation
/// surface used by the hooks, Var and Gate — not for direct test use.
class Run {
 public:
  /// Registers a model thread. Must be called before Await; at most
  /// kMaxThreads threads.
  void Spawn(std::function<void()> fn);

  /// Drives the schedule to completion (all model threads finished),
  /// joining their OS threads. Throws the internal halt exception on
  /// failure — Explore catches it.
  void Await();

  static constexpr int kMaxThreads = 16;

  // -- instrumentation surface (internal) --
  std::uint64_t OnAtomicLoad(void* obj, const RawAtomicOps& ops, int order);
  void OnAtomicStore(void* obj, const RawAtomicOps& ops, int order,
                     std::uint64_t value);
  std::uint64_t OnAtomicRmw(void* obj, const RawAtomicOps& ops, int order,
                            RmwModifyFn modify, void* ctx, bool* stored);
  void OnFence(int order);
  void OnVarRead(const void* addr, const char* name);
  void OnVarWrite(const void* addr, const char* name);
  void OnPark(const void* gate);
  void OnWake(const void* gate);
  std::uint64_t OnGatePrepare(const void* gate);
  void OnGateCommitWait(const void* gate, std::uint64_t epoch);
  /// Records `message` as this schedule's failure and unwinds.
  [[noreturn]] void Fail(std::string message);

  struct Impl;

 private:
  friend struct Impl;
  friend Result ExploreImpl(const Options&,
                            const std::vector<std::uint32_t>*,
                            const std::function<void(Run&)>&);
  explicit Run(Impl* impl) : impl_(impl) {}
  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  Impl* impl_;
};

/// Reports an MC_CHECK failure: fails the active run (model thread or the
/// Explore controller between Await and body return); outside any run it
/// throws std::logic_error.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);

/// Model-checker assertion: inside a run, a violation fails the schedule
/// and reports its transition trace; harmless to leave in shared fixtures.
#define MC_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::tds::modelcheck::CheckFailed(#cond, __FILE__, __LINE__);      \
    }                                                                 \
  } while (0)

/// Instrumented plain (non-atomic) variable: every access is a scheduling
/// point race-checked against the happens-before clocks. Outside a run it
/// is an ordinary variable. Use it for the payload a protocol publishes —
/// the racy read is where a missing release/acquire edge becomes visible.
template <typename T>
class Var {
 public:
  Var() : v_() {}
  explicit Var(T init, const char* name = "var") : v_(init), name_(name) {}

  T Read() const {
    if (Run* run = ActiveRun()) run->OnVarRead(&v_, name_);
    return v_;
  }

  void Write(T value) {
    if (Run* run = ActiveRun()) run->OnVarWrite(&v_, name_);
    v_ = value;
  }

 private:
  T v_;
  const char* name_ = "var";
};

/// Condition-variable model. Two idioms:
///
///  - Naive: Park() blocks until a *subsequent* Wake() on the same gate; a
///    Wake with nobody parked is lost, exactly like CondVar::NotifyOne
///    with no waiter. A schedule in which every unfinished thread is
///    blocked is reported as a deadlock — so modeling a bounded real-world
///    park (StagedWait slices) as an unbounded Gate park turns "missed
///    wake beyond the documented one-slice bound" into a checkable
///    property.
///
///  - Eventcount: epoch = PrepareWait(); re-check the predicate;
///    CommitWait(epoch) parks only if no Wake has bumped the epoch since.
///    This models the engine's real discipline — the pre-park re-check and
///    the wait happen under the same mutex the waker must take to notify,
///    so a wake cannot slip between re-check and park.
class Gate {
 public:
  Gate() = default;
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  void Park() {
    if (Run* run = ActiveRun()) run->OnPark(this);
  }

  void Wake() {
    if (Run* run = ActiveRun()) run->OnWake(this);
  }

  std::uint64_t PrepareWait() {
    Run* run = ActiveRun();
    return run != nullptr ? run->OnGatePrepare(this) : 0;
  }

  void CommitWait(std::uint64_t epoch) {
    if (Run* run = ActiveRun()) run->OnGateCommitWait(this, epoch);
  }
};

}  // namespace modelcheck
}  // namespace tds

#endif  // TDS_MODELCHECK_SCHED_H_
