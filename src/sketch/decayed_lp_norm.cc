#include "sketch/decayed_lp_norm.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/codec.h"
#include "util/random.h"

namespace tds {

DecayedLpNorm::DecayedLpNorm(DecayPtr decay, const Options& options,
                             StableSampler sampler,
                             std::vector<std::unique_ptr<CehDecayedSum>> pos,
                             std::vector<std::unique_ptr<CehDecayedSum>> neg)
    : decay_(std::move(decay)),
      options_(options),
      sampler_(std::move(sampler)),
      pos_(std::move(pos)),
      neg_(std::move(neg)) {}

StatusOr<DecayedLpNorm> DecayedLpNorm::Create(DecayPtr decay,
                                              const Options& options) {
  if (decay == nullptr) {
    return Status::InvalidArgument("decay function required");
  }
  if (options.rows < 1) return Status::InvalidArgument("rows must be >= 1");
  if (!(options.quantization > 0.0)) {
    return Status::InvalidArgument("quantization must be > 0");
  }
  auto sampler = StableSampler::Create(options.p);
  if (!sampler.ok()) return sampler.status();
  CehDecayedSum::Options ceh_options;
  ceh_options.epsilon = options.epsilon;
  std::vector<std::unique_ptr<CehDecayedSum>> pos;
  std::vector<std::unique_ptr<CehDecayedSum>> neg;
  for (int row = 0; row < options.rows; ++row) {
    auto p = CehDecayedSum::Create(decay, ceh_options);
    if (!p.ok()) return p.status();
    auto n = CehDecayedSum::Create(decay, ceh_options);
    if (!n.ok()) return n.status();
    pos.push_back(std::move(p).value());
    neg.push_back(std::move(n).value());
  }
  return DecayedLpNorm(std::move(decay), options, std::move(sampler).value(),
                       std::move(pos), std::move(neg));
}

double DecayedLpNorm::ProjectionEntry(int row, uint64_t coord) const {
  const uint64_t key =
      HashCombine(options_.seed, static_cast<uint64_t>(row), coord);
  const double u1 = HashedUniform(key, 1);
  const double u2 = HashedUniform(key, 2);
  return sampler_.FromUniforms(u1, u2);
}

void DecayedLpNorm::Update(Tick t, uint64_t coord, uint64_t amount) {
  if (amount == 0) return;
  for (int row = 0; row < rows(); ++row) {
    const double projected = static_cast<double>(amount) *
                             ProjectionEntry(row, coord) *
                             options_.quantization;
    const auto magnitude =
        static_cast<uint64_t>(std::llround(std::fabs(projected)));
    if (magnitude == 0) continue;
    if (projected >= 0.0) {
      pos_[row]->Update(t, magnitude);
      neg_[row]->Update(t, 0);  // keep clocks aligned
    } else {
      neg_[row]->Update(t, magnitude);
      pos_[row]->Update(t, 0);
    }
  }
}

double DecayedLpNorm::Query(Tick now) {
  std::vector<double> magnitudes;
  magnitudes.reserve(pos_.size());
  for (int row = 0; row < rows(); ++row) {
    const double value =
        (pos_[row]->Query(now) - neg_[row]->Query(now)) / options_.quantization;
    magnitudes.push_back(std::fabs(value));
  }
  // Median of the row magnitudes; average the two central order statistics
  // when the row count is even (taking just the upper one biases the
  // estimate upward).
  auto mid = magnitudes.begin() + magnitudes.size() / 2;
  std::nth_element(magnitudes.begin(), mid, magnitudes.end());
  double median = *mid;
  if (magnitudes.size() % 2 == 0) {
    const double lower =
        *std::max_element(magnitudes.begin(), mid);
    median = (median + lower) / 2.0;
  }
  return median / sampler_.MedianAbs();
}

void DecayedLpNorm::EncodeState(Encoder& encoder) const {
  encoder.PutDouble(options_.p);
  encoder.PutVarint(static_cast<uint64_t>(options_.rows));
  encoder.PutDouble(options_.epsilon);
  encoder.PutDouble(options_.quantization);
  encoder.PutVarint(options_.seed);
  for (const auto& row : pos_) row->EncodeState(encoder);
  for (const auto& row : neg_) row->EncodeState(encoder);
}

Status DecayedLpNorm::DecodeState(Decoder& decoder) {
  double p = 0.0, epsilon = 0.0, quantization = 0.0;
  uint64_t rows = 0, seed = 0;
  if (!decoder.GetDouble(&p) || !decoder.GetVarint(&rows) ||
      !decoder.GetDouble(&epsilon) || !decoder.GetDouble(&quantization) ||
      !decoder.GetVarint(&seed)) {
    return CorruptSnapshot("Lp sketch header");
  }
  if (p != options_.p || static_cast<int>(rows) != options_.rows ||
      epsilon != options_.epsilon || quantization != options_.quantization ||
      seed != options_.seed) {
    return Status::InvalidArgument("snapshot options mismatch");
  }
  for (auto& row : pos_) {
    Status status = row->DecodeState(decoder);
    if (!status.ok()) return status;
  }
  for (auto& row : neg_) {
    Status status = row->DecodeState(decoder);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

size_t DecayedLpNorm::StorageBits() const {
  size_t bits = 0;
  for (const auto& row : pos_) bits += row->StorageBits();
  for (const auto& row : neg_) bits += row->StorageBits();
  // The projection matrix itself costs one seed register.
  return bits + 64;
}

}  // namespace tds
