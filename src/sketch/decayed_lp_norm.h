#ifndef TDS_SKETCH_DECAYED_LP_NORM_H_
#define TDS_SKETCH_DECAYED_LP_NORM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ceh.h"
#include "decay/decay_function.h"
#include "util/stable.h"
#include "util/status.h"

namespace tds {

/// Time-decaying L_p norm sketch (paper Section 7.1). Each update is an
/// increment (amount a_i, coordinate c_i) to a d-dimensional vector whose
/// j-th decayed coordinate is H_j(T) = sum_{i: c_i = j} g(age_i) * a_i; the
/// sketch estimates ||H_g(T)||_p for p in (0, 2] with o(d) state.
///
/// Construction follows Indyk's method, cascaded through decayed sums as
/// proposed in the paper: L rows of a p-stable projection whose entries are
/// regenerated on the fly from (seed, row, coordinate) hashes (never
/// stored); row values sum a_i * x(row, c_i) and are maintained *decayed*
/// by a pair of CEH structures per row (positive and negative parts, since
/// the histograms hold nonnegative integer counts — contributions are
/// quantized). The norm estimate is median_row |row value| divided by the
/// median of |p-stable|.
class DecayedLpNorm {
 public:
  struct Options {
    double p = 1.0;
    /// Number of sketch rows L (more rows -> tighter median concentration).
    int rows = 32;
    /// Relative accuracy of each row's decayed sums.
    double epsilon = 0.05;
    /// Fixed-point scale used to quantize projected contributions.
    double quantization = 1024.0;
    uint64_t seed = 0x11dc0de;
  };

  static StatusOr<DecayedLpNorm> Create(DecayPtr decay,
                                        const Options& options);

  /// Adds `amount` to coordinate `coord` at tick t.
  void Update(Tick t, uint64_t coord, uint64_t amount);

  /// Estimated decayed L_p norm at `now`.
  double Query(Tick now);

  /// Projection entry for (row, coord) — deterministic; exposed for tests.
  double ProjectionEntry(int row, uint64_t coord) const;

  size_t StorageBits() const;
  int rows() const { return static_cast<int>(pos_.size()); }
  const DecayPtr& decay() const { return decay_; }

  /// Snapshot support: serializes options and all row states (projection
  /// entries are hash-derived from the seed and never stored). Restore
  /// with DecodeDecayedLpNorm, re-supplying the same decay function.
  void EncodeState(class Encoder& encoder) const;
  Status DecodeState(class Decoder& decoder);

  const Options& options() const { return options_; }

 private:
  DecayedLpNorm(DecayPtr decay, const Options& options,
                StableSampler sampler,
                std::vector<std::unique_ptr<CehDecayedSum>> pos,
                std::vector<std::unique_ptr<CehDecayedSum>> neg);

  DecayPtr decay_;
  Options options_;
  StableSampler sampler_;
  std::vector<std::unique_ptr<CehDecayedSum>> pos_;
  std::vector<std::unique_ptr<CehDecayedSum>> neg_;
};

}  // namespace tds

#endif  // TDS_SKETCH_DECAYED_LP_NORM_H_
