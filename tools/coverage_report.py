#!/usr/bin/env python3
"""Line-coverage report + floor for a --coverage (gcov-format) build.

tools/check.sh's `coverage` stage builds with -DTDS_COVERAGE=ON, runs the
fuzz-driver ctest leg, then calls this script: it walks the build tree for
.gcno note files whose sources fall under --filter (default src/core),
runs gcov on each, and aggregates executed/total line counts. The run
fails when aggregate coverage dips below --floor — the guard that keeps
the dual-mode fuzz drivers (tests/fuzz/) actually exercising the core
sketches rather than rotting into shallow smoke tests.

Works with GCC's gcov and (via --gcov "llvm-cov gcov") clang's gcov-format
output. No third-party coverage tools required.
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

# gcov -n output comes in (File, Lines executed) pairs:
#   File '/root/repo/src/core/eh.cc'
#   Lines executed:93.55% of 341
FILE_PATTERN = re.compile(r"^File '(?P<path>[^']*)'")
LINES_PATTERN = re.compile(
    r"^Lines executed:(?P<pct>[0-9.]+)% of (?P<total>\d+)")
NO_LINES_PATTERN = re.compile(r"^No executable lines")


def find_gcno_files(build_dir):
    out = []
    for dirpath, _dirnames, filenames in os.walk(build_dir):
        for name in filenames:
            if name.endswith(".gcno"):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def run_gcov(gcov_argv, gcno_path, cwd):
    proc = subprocess.run(
        gcov_argv + ["-n", gcno_path],
        cwd=cwd,
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.stdout


def parse_gcov_output(text):
    """Yields (source_path, executed_lines, total_lines) per reported file."""
    current = None
    for line in text.splitlines():
        file_match = FILE_PATTERN.match(line)
        if file_match:
            current = file_match.group("path")
            continue
        if current is None:
            continue
        lines_match = LINES_PATTERN.match(line)
        if lines_match:
            total = int(lines_match.group("total"))
            pct = float(lines_match.group("pct"))
            executed = int(round(total * pct / 100.0))
            yield current, executed, total
            current = None
        elif NO_LINES_PATTERN.match(line):
            current = None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", required=True,
                        help="build tree configured with -DTDS_COVERAGE=ON")
    parser.add_argument("--source-root", default=None,
                        help="repo root (default: this script's parent dir)")
    parser.add_argument("--filter", default="src/core",
                        help="source prefix (relative to root) to report on")
    parser.add_argument("--floor", type=float, default=0.0,
                        help="fail when aggregate line coverage %% is below")
    parser.add_argument("--gcov", default=None,
                        help='gcov command (e.g. "llvm-cov gcov"); '
                             "default: gcov, falling back to llvm-cov gcov")
    args = parser.parse_args()

    root = os.path.abspath(args.source_root or
                           os.path.join(os.path.dirname(__file__), os.pardir))
    build_dir = os.path.abspath(args.build_dir)
    filter_prefix = os.path.join(root, args.filter) + os.sep

    if args.gcov:
        gcov_argv = args.gcov.split()
    elif shutil.which("gcov"):
        gcov_argv = ["gcov"]
    elif shutil.which("llvm-cov"):
        gcov_argv = ["llvm-cov", "gcov"]
    else:
        print("coverage_report: no gcov or llvm-cov on PATH", file=sys.stderr)
        return 2

    gcno_files = find_gcno_files(build_dir)
    if not gcno_files:
        print(f"coverage_report: no .gcno files under {build_dir} "
              "(build with -DTDS_COVERAGE=ON and run the tests first)",
              file=sys.stderr)
        return 2

    per_file = {}
    with tempfile.TemporaryDirectory(prefix="tds_gcov_") as scratch:
        for gcno in gcno_files:
            for path, executed, total in parse_gcov_output(
                    run_gcov(gcov_argv, gcno, scratch)):
                resolved = os.path.abspath(
                    path if os.path.isabs(path) else os.path.join(root, path))
                if not resolved.startswith(filter_prefix):
                    continue
                # A source compiled into several objects (headers, or one TU
                # per test binary) reports once per object; keep the best
                # run, since the floor asks "is this line reachable by the
                # suite", not "by every binary".
                executed_before, total_before = per_file.get(
                    resolved, (-1, 0))
                if executed > executed_before:
                    per_file[resolved] = (executed, max(total, total_before))

    if not per_file:
        print(f"coverage_report: no sources under {args.filter} reported "
              "coverage", file=sys.stderr)
        return 2

    grand_executed = 0
    grand_total = 0
    print(f"Line coverage under {args.filter} "
          f"({os.path.basename(build_dir)}):")
    for path in sorted(per_file):
        executed, total = per_file[path]
        grand_executed += executed
        grand_total += total
        pct = 100.0 * executed / total if total else 100.0
        print(f"  {pct:6.2f}%  {executed:5d}/{total:<5d}  "
              f"{os.path.relpath(path, root)}")
    aggregate = 100.0 * grand_executed / grand_total if grand_total else 100.0
    print(f"  ------\n  {aggregate:6.2f}%  {grand_executed:5d}/{grand_total:<5d}"
          f"  aggregate")

    if aggregate < args.floor:
        print(f"coverage_report: FAIL — aggregate {aggregate:.2f}% is below "
              f"the floor of {args.floor:.2f}%", file=sys.stderr)
        return 1
    print(f"coverage_report: OK (floor {args.floor:.2f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
