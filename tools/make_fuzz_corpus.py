#!/usr/bin/env python3
"""Regenerates the seed corpora under tests/fuzz/corpus/.

Each corpus file is a byte string the dual-mode drivers (tests/fuzz/*.cc,
docs/CORRECTNESS.md "Dual-mode fuzzing") can consume in libFuzzer mode:

    [config prefix bytes] + FuzzInput::FromSeed(seed, n) byte stream

The prefix replays the LLVMFuzzerTestOneInput config draws (each a
single-byte Below() because every palette has <= 256 entries) so the file
deterministically selects the same (backend, decay, ...) pairing as one of
the historical ctest seed cases; the stream is the exact byte
materialization `FromSeed` produces for that seed, replicated here in
Python (SplitMix64 -> HashCombine -> 8 little-endian bytes per draw, the
contract documented on FuzzInput).  Streams are truncated to a few KB:
libFuzzer grows interesting inputs on its own, the corpus only has to
start it in deep, valid regions of each driver's state space.

Usage:  python3 tools/make_fuzz_corpus.py [--check]

--check verifies the files on disk match what this script generates (used
by the lint/CI legs to keep corpus and seed lists in sync) instead of
writing them.
"""

import argparse
import pathlib
import sys

MASK = (1 << 64) - 1


def splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK
    return x ^ (x >> 31)


def hash_combine(a: int, b: int) -> int:
    return splitmix64(a ^ ((splitmix64(b) + 0x9E3779B97F4A7C15) & MASK))


def from_seed(seed: int, num_bytes: int) -> bytes:
    """Python twin of FuzzInput::FromSeed (tests/fuzz/fuzz_util.h)."""
    out = bytearray()
    counter = 0
    while len(out) < num_bytes:
        word = hash_combine(seed, counter)
        counter += 1
        out += word.to_bytes(8, "little")
    return bytes(out[:num_bytes])


# Stream bytes per corpus file.  Large enough to drive a few hundred ops
# into every driver, small enough to keep the checked-in corpus light.
STREAM_BYTES = 2048

# driver -> list of (file name, config prefix bytes, FromSeed seed).
# Prefixes mirror the single-byte config draws in each driver's
# LLVMFuzzerTestOneInput; seeds come from the gtest wrappers' historical
# seed lists so each file lands in a proven-interesting configuration.
CORPUS = {
    "eh_fuzz_test": [
        # prefix: [epsilon index Below(4), window index Below(5)]
        ("eh_eps02_w512", bytes([0, 3]), 0xE401),
        ("eh_eps10_w128", bytes([1, 2]), 0xE402),
        ("eh_eps25_w64", bytes([2, 1]), 0xE403),
        ("eh_eps50_w32", bytes([3, 0]), 0xE404),
        ("eh_eps10_w1024", bytes([1, 4]), 0xE405),
    ],
    "flat_eh_fuzz_test": [
        # prefix: [harness Below(2)], then harness 0 (EH twins) draws
        # [epsilon index Below(4), window index Below(5)]; harness 1
        # (CoarseCEH twins) draws [seed offset Below(16)].
        ("flat_eh_eps10_w128", bytes([0, 1, 2]), 0xF1A1),
        ("flat_eh_eps02_w512", bytes([0, 0, 3]), 0xF1A2),
        ("flat_eh_eps50_w32", bytes([0, 3, 0]), 0xF1A4),
        ("flat_eh_eps25_w1024", bytes([0, 2, 4]), 0xF1A5),
        ("flat_coarse_s1", bytes([1, 1]), 0xF1B1),
        ("flat_coarse_s7", bytes([1, 7]), 0xF1B2),
    ],
    "ceh_fuzz_test": [
        # prefix: [decay kind Below(4), tight flag Below(4) (0 => tight)]
        ("ceh_sliwin_tight", bytes([0, 0]), 0xCE01),
        ("ceh_sliwin_loose", bytes([0, 1]), 0xCE02),
        ("ceh_poly1", bytes([1, 1]), 0xCE03),
        ("ceh_poly2", bytes([2, 1]), 0xCE04),
        ("ceh_expd", bytes([3, 1]), 0xCE05),
    ],
    "wbmh_fuzz_test": [
        # prefix: [mode Below(4) (0 => shared layout)] then for counter
        # mode [tight Below(4), alpha index Below(3)]
        ("wbmh_shared_layout", bytes([0]), 0x3BFF),
        ("wbmh_a05", bytes([1, 1, 0]), 0x3B01),
        ("wbmh_a10_tight", bytes([1, 0, 1]), 0x3B02),
        ("wbmh_a20", bytes([2, 1, 2]), 0x3B03),
        ("wbmh_a10", bytes([3, 1, 1]), 0x3B04),
    ],
    "mvd_fuzz_test": [
        # prefix: [harness Below(2), rank_seed byte Below(64)]
        ("mvd_list_r1", bytes([0, 0]), 0x4D01),
        ("mvd_list_r17", bytes([0, 16]), 0x4D02),
        ("mvd_bottomk_r5", bytes([1, 4]), 0x4D03),
        ("mvd_bottomk_r33", bytes([1, 32]), 0x4D04),
    ],
    "core_fuzz_test": [
        # prefix: [core Below(5), then that core's own config draws]
        ("core_exact_sliding", bytes([0, 0]), 0xEA01),
        ("core_exact_poly", bytes([0, 1]), 0xEA02),
        ("core_ewma_b16", bytes([1, 1]), 0xEB02),
        ("core_recent", bytes([2]), 0xEC01),
        ("core_polyexp_k2", bytes([3, 1]), 0xED02),
        ("core_coarse", bytes([4]), 0xEE01),
    ],
    "snapshot_fuzz_test": [
        # prefix: [harness Below(4), case index Below(8)]
        ("snap_roundtrip_exact", bytes([0, 0]), 0x5A01),
        ("snap_roundtrip_ceh", bytes([0, 4]), 0x5A01),
        ("snap_roundtrip_wbmh", bytes([0, 7]), 0x5A01),
        ("snap_corrupt_ceh", bytes([1, 4]), 0x5A02),
        ("snap_corrupt_coarse", bytes([1, 6]), 0x5A02),
        # Raw-decode harness: remaining bytes go straight to
        # DecodeDecayedSum, so any stream is a starting point.
        ("snap_rawdecode_ceh", bytes([2, 4]), 0x5A03),
    ],
    "registry_fuzz_test": [
        # prefix: [harness Below(4)]
        ("registry_eviction", bytes([0]), 1 * 7177),
        ("registry_wbmh", bytes([1]), 1 * 1009 + 7),
        ("registry_ceh", bytes([2]), 2 * 1009 + 4),
    ],
    "engine_merge_fuzz_test": [
        # prefix: [config Below(3)]
        ("merge_eh", bytes([0]), 1 * 6151 + 4),
        ("merge_ceh", bytes([1]), 2 * 6151 + 4),
        ("merge_wbmh", bytes([2]), 3 * 6151 + 7),
    ],
    "engine_fault_fuzz_test": [
        # prefix: [config Below(2)]
        ("fault_ceh", bytes([0]), 1 * 9176 + 4),
        ("fault_wbmh", bytes([1]), 2 * 9176 + 7),
    ],
    "checkpoint_log_fuzz_test": [
        # prefix: [config Below(2)]
        ("ckptlog_ceh", bytes([0]), 1 * 5261 + 4),
        ("ckptlog_wbmh", bytes([1]), 2 * 5261 + 7),
    ],
}


def corpus_root() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parent.parent / "tests" / "fuzz" / "corpus"


def generate() -> dict:
    files = {}
    for driver, entries in sorted(CORPUS.items()):
        for name, prefix, seed in entries:
            files[f"{driver}/{name}"] = prefix + from_seed(seed, STREAM_BYTES)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="verify corpus on disk matches, write nothing")
    args = parser.parse_args()

    root = corpus_root()
    files = generate()
    stale = []
    for rel, payload in files.items():
        path = root / rel
        if args.check:
            if not path.is_file() or path.read_bytes() != payload:
                stale.append(rel)
            continue
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(payload)

    if args.check:
        on_disk = {p.relative_to(root).as_posix()
                   for p in root.rglob("*") if p.is_file()}
        stray = sorted(on_disk - set(files))
        for rel in stale:
            print(f"make_fuzz_corpus: stale or missing: {rel}")
        for rel in stray:
            print(f"make_fuzz_corpus: not generated by this script: {rel}")
        if stale or stray:
            print("make_fuzz_corpus: run python3 tools/make_fuzz_corpus.py")
            return 1
        print(f"make_fuzz_corpus: {len(files)} corpus files in sync")
        return 0

    print(f"make_fuzz_corpus: wrote {len(files)} files under {root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
