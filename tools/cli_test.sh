#!/bin/sh
# Smoke test for tds_cli: stream processing, probing, snapshot resume.
set -e
CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

printf '1 3\n2 0\n5 7\n9 2\n12 1\n' > "$TMP/stream.txt"
"$CLI" --decay=poly:1.0 --probe=4 "$TMP/stream.txt" > "$TMP/out.txt"
grep -q '^12' "$TMP/out.txt"

# Snapshot resume must equal single-pass processing.
printf '1 5\n3 5\n' > "$TMP/p1.txt"
printf '6 5\n9 5\n' > "$TMP/p2.txt"
printf '1 5\n3 5\n6 5\n9 5\n' > "$TMP/full.txt"
"$CLI" --decay=sliwin:8 --save="$TMP/state.tds" "$TMP/p1.txt" > /dev/null
"$CLI" --decay=sliwin:8 --load="$TMP/state.tds" "$TMP/p2.txt" | tail -1 > "$TMP/resumed.txt"
"$CLI" --decay=sliwin:8 "$TMP/full.txt" | tail -1 > "$TMP/single.txt"
cmp "$TMP/resumed.txt" "$TMP/single.txt"

# Wrong decay on load must fail.
if "$CLI" --decay=sliwin:9 --load="$TMP/state.tds" "$TMP/p2.txt" > /dev/null 2>&1; then
  echo "expected decay mismatch to fail" >&2
  exit 1
fi

# Engine mode: "tick key value" triples -> merged-snapshot report. With a
# full window, key 7 carries 3+5 = 8 and tops the ranking.
printf '1 7 3\n1 9 2\n2 7 5\n3 11 1\n' > "$TMP/keyed.txt"
"$CLI" --decay=sliwin:64 --engine=2 --topk=2 "$TMP/keyed.txt" > "$TMP/engine.txt"
grep -q '^# engine: 2 shards, 4 items, 3 keys' "$TMP/engine.txt"
head -1 "$TMP/engine.txt" | grep -q 'cut tick 3'
grep -q '^7	8.000000$' "$TMP/engine.txt"

# Engine mode rejects the single-aggregate snapshot options.
if "$CLI" --engine=2 --save="$TMP/state.tds" "$TMP/keyed.txt" > /dev/null 2>&1; then
  echo "expected --engine with --save to fail" >&2
  exit 1
fi

# Engine checkpoint/restore: ingest -> checkpoint, restore into a fresh
# engine with no further input -> identical top-k report (comments carry
# run-local counters, so compare the data rows only).
"$CLI" --decay=sliwin:64 --engine=2 --topk=3 --checkpoint="$TMP/engine.ckpt" \
  "$TMP/keyed.txt" > "$TMP/ckpt_run.txt" 2> "$TMP/ckpt_err.txt"
grep -q '# checkpoint -> ' "$TMP/ckpt_err.txt"
: > "$TMP/empty.txt"
"$CLI" --decay=sliwin:64 --engine=2 --topk=3 --restore="$TMP/engine.ckpt" \
  "$TMP/empty.txt" > "$TMP/restored_run.txt"
grep -v '^#' "$TMP/ckpt_run.txt" > "$TMP/ckpt_rows.txt"
grep -v '^#' "$TMP/restored_run.txt" > "$TMP/restored_rows.txt"
cmp "$TMP/ckpt_rows.txt" "$TMP/restored_rows.txt"

# Checkpoint mid-stream + restore + remainder must equal one uninterrupted
# run (crash/recover then catch up).
printf '1 7 3\n1 9 2\n' > "$TMP/keyed_p1.txt"
printf '2 7 5\n3 11 1\n' > "$TMP/keyed_p2.txt"
"$CLI" --decay=sliwin:64 --engine=2 --topk=3 --checkpoint="$TMP/mid.ckpt" \
  "$TMP/keyed_p1.txt" > /dev/null 2> /dev/null
"$CLI" --decay=sliwin:64 --engine=2 --topk=3 --restore="$TMP/mid.ckpt" \
  "$TMP/keyed_p2.txt" | grep -v '^#' > "$TMP/resumed_engine.txt"
cmp "$TMP/resumed_engine.txt" "$TMP/ckpt_rows.txt"

# A torn (truncated) checkpoint with no .prev must refuse to restore.
SIZE="$(wc -c < "$TMP/mid.ckpt")"
head -c "$((SIZE - 5))" "$TMP/mid.ckpt" > "$TMP/torn.ckpt"
if "$CLI" --decay=sliwin:64 --engine=2 --restore="$TMP/torn.ckpt" \
  "$TMP/empty.txt" > /dev/null 2>&1; then
  echo "expected truncated checkpoint restore to fail" >&2
  exit 1
fi

# Checkpoint options require engine mode.
if "$CLI" --checkpoint="$TMP/x.ckpt" "$TMP/stream.txt" > /dev/null 2>&1; then
  echo "expected --checkpoint without --engine to fail" >&2
  exit 1
fi

# Incremental checkpoint log: two chained runs committing generations 1 and
# 2 into one directory must equal the uninterrupted run (same rows as the
# monolithic-checkpoint scenario above).
"$CLI" --decay=sliwin:64 --engine=2 --topk=3 \
  --checkpoint-dir="$TMP/ckptlog" "$TMP/keyed_p1.txt" \
  > /dev/null 2> "$TMP/ckptlog_err1.txt"
grep -q 'generation 1' "$TMP/ckptlog_err1.txt"
"$CLI" --decay=sliwin:64 --engine=2 --topk=3 \
  --checkpoint-dir="$TMP/ckptlog" "$TMP/keyed_p2.txt" \
  2> "$TMP/ckptlog_err2.txt" | grep -v '^#' > "$TMP/ckptlog_rows.txt"
grep -q '# resumed from checkpoint log' "$TMP/ckptlog_err2.txt"
grep -q 'generation 2' "$TMP/ckptlog_err2.txt"
cmp "$TMP/ckptlog_rows.txt" "$TMP/ckpt_rows.txt"

# Standby catch-up + promote: a follower fed only the checkpoint directory
# must promote into an engine with the identical report, and the promoted
# engine must keep ingesting (failover without data loss).
"$CLI" --decay=sliwin:64 --engine=2 --topk=3 \
  --promote-from="$TMP/ckptlog" "$TMP/empty.txt" \
  2> "$TMP/standby_err.txt" | grep -v '^#' > "$TMP/promoted_rows.txt"
grep -q 'standby caught up to generation 2' "$TMP/standby_err.txt"
grep -q 'promoted standby -> primary' "$TMP/standby_err.txt"
cmp "$TMP/promoted_rows.txt" "$TMP/ckpt_rows.txt"
printf '4 7 2\n' > "$TMP/keyed_p3.txt"
"$CLI" --decay=sliwin:64 --engine=2 --topk=1 \
  --promote-from="$TMP/ckptlog" "$TMP/keyed_p3.txt" 2> /dev/null \
  | grep -q '^7	10.000000$'

# A fingerprint mismatch must refuse both resume and promote.
if "$CLI" --decay=sliwin:64 --engine=2 --epsilon=0.2 \
  --checkpoint-dir="$TMP/ckptlog" "$TMP/empty.txt" > /dev/null 2>&1; then
  echo "expected checkpoint-log fingerprint mismatch to fail" >&2
  exit 1
fi
if "$CLI" --decay=sliwin:32 --engine=2 \
  --promote-from="$TMP/ckptlog" "$TMP/empty.txt" > /dev/null 2>&1; then
  echo "expected standby decay mismatch to fail" >&2
  exit 1
fi
echo CLI_SMOKE_OK
