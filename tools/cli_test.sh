#!/bin/sh
# Smoke test for tds_cli: stream processing, probing, snapshot resume.
set -e
CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

printf '1 3\n2 0\n5 7\n9 2\n12 1\n' > "$TMP/stream.txt"
"$CLI" --decay=poly:1.0 --probe=4 "$TMP/stream.txt" > "$TMP/out.txt"
grep -q '^12' "$TMP/out.txt"

# Snapshot resume must equal single-pass processing.
printf '1 5\n3 5\n' > "$TMP/p1.txt"
printf '6 5\n9 5\n' > "$TMP/p2.txt"
printf '1 5\n3 5\n6 5\n9 5\n' > "$TMP/full.txt"
"$CLI" --decay=sliwin:8 --save="$TMP/state.tds" "$TMP/p1.txt" > /dev/null
"$CLI" --decay=sliwin:8 --load="$TMP/state.tds" "$TMP/p2.txt" | tail -1 > "$TMP/resumed.txt"
"$CLI" --decay=sliwin:8 "$TMP/full.txt" | tail -1 > "$TMP/single.txt"
cmp "$TMP/resumed.txt" "$TMP/single.txt"

# Wrong decay on load must fail.
if "$CLI" --decay=sliwin:9 --load="$TMP/state.tds" "$TMP/p2.txt" > /dev/null 2>&1; then
  echo "expected decay mismatch to fail" >&2
  exit 1
fi

# Engine mode: "tick key value" triples -> merged-snapshot report. With a
# full window, key 7 carries 3+5 = 8 and tops the ranking.
printf '1 7 3\n1 9 2\n2 7 5\n3 11 1\n' > "$TMP/keyed.txt"
"$CLI" --decay=sliwin:64 --engine=2 --topk=2 "$TMP/keyed.txt" > "$TMP/engine.txt"
grep -q '^# engine: 2 shards, 4 items, 3 keys' "$TMP/engine.txt"
head -1 "$TMP/engine.txt" | grep -q 'cut tick 3'
grep -q '^7	8.000000$' "$TMP/engine.txt"

# Engine mode rejects the single-aggregate snapshot options.
if "$CLI" --engine=2 --save="$TMP/state.tds" "$TMP/keyed.txt" > /dev/null 2>&1; then
  echo "expected --engine with --save to fail" >&2
  exit 1
fi
echo CLI_SMOKE_OK
