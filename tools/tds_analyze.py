#!/usr/bin/env python3
"""Semantic analyzer (docs/CORRECTNESS.md, "Semantic analysis pass").

Whole-program checks that need cross-file context — one level above
tools/tds_lint.py's per-line conventions, one level below a compiler:

  lock-order      Builds the program-wide lock-acquisition graph: every
                  MutexLock / ReaderMutexLock / WriterMutexLock scope adds
                  an edge held-mutex -> acquired-mutex, and a TDS_REQUIRES /
                  TDS_REQUIRES_SHARED annotation counts as holding that
                  mutex for the whole function. Any cycle (including a
                  self-edge) is a potential deadlock and is rejected with
                  one acquisition site per edge.
  const-query     `Query(...) const` definitions must not call non-const
                  methods of their own class: the engine publishes
                  aggregates to concurrent readers through const snapshots,
                  so a mutating Query is a data race the type system was
                  supposed to prevent.
  audit-hook      On any class that declares `Status AuditInvariants()`,
                  every non-const Status-returning method (a fallible
                  mutator) must audit before returning — either the
                  TDS_AUDIT_MUTATION hook (audit builds abort at the
                  offending mutation) or a direct AuditInvariants() call
                  (the hostile-snapshot funnel: reject instead of install).
                  Either way, no fallible mutator escapes the audit net.
  failpoint-order Functions documented "unchanged on error" that contain
                  TDS_FAILPOINT_RETURN must not write member state before
                  the failpoint: the injected early return must exit while
                  the object is still untouched, or the documentation (and
                  the fault-fuzz oracle built on it) is a lie.
  memory-order    Program-wide memory-order audit over the tds::Atomic
                  call sites (src/util/atomic.h itself is exempt — it is
                  the sanctioned implementation). Three sub-checks: (1)
                  hot-path (src/engine) operations must spell their order
                  out — a defaulted seq_cst hides whether the strength is
                  load-bearing or an accident; (2) pointer-typed atomic
                  members (`Atomic<T*>`, the RCU-publish idiom) must never
                  be loaded or published relaxed — dropping the release/
                  acquire pair severs the happens-before edge to the
                  pointee's fields; (3) a release fence must have a paired
                  acquire fence somewhere in the tree and vice versa —
                  fences pair across files, which is exactly why no
                  per-file check can see a missing half.

Frontends (--frontend=auto|libclang|builtin):

  libclang   Parses the translation units listed in a compilation database
             (--compdb, default build/compile_commands.json) through the
             clang Python bindings and extracts facts from the real AST.
  builtin    A dependency-free tokenizer (comment/string stripping, brace
             tracking, declaration scanning) over src/. Less precise on
             exotic C++ but exact on this codebase's house style; it is
             what keeps the analyzer runnable on toolchains without clang.

`auto` uses libclang when `clang.cindex` imports and can open a library,
and otherwise prints a notice and falls back to builtin — the analysis
always runs. Both frontends feed the same rule engine, so fixtures and
allow markers behave identically.

A finding may be suppressed with a `tds-analyze: allow(<rule>)` marker on
the offending line or on the method's declaration; like lint allows, new
markers are reviewed as suppressions, not fixes.

Usage:
  tools/tds_analyze.py [--root DIR] [--frontend F] [--compdb FILE]
  tools/tds_analyze.py --selftest     prove each rule rejects its fixture
                                      (tools/analyze_fixtures/), then the
                                      real tree must pass clean

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

CXX_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

LOCK_CLASSES = ("MutexLock", "ReaderMutexLock", "WriterMutexLock")

LOCK_DECL_PATTERN = re.compile(
    r"\b(MutexLock|ReaderMutexLock|WriterMutexLock)\s+\w+\s*\(([^()]*)\)"
)

REQUIRES_PATTERN = re.compile(r"\bTDS_REQUIRES(?:_SHARED)?\s*\(([^()]*)\)")

DEFINITION_PATTERN = re.compile(
    r"^[ \t]*(?P<prefix>[\w:<>,&*~\s]*?)"
    r"(?P<cls>\w+)::(?P<name>~?\w+)\s*\(",
    re.M,
)

AUDIT_DECL_PATTERN = re.compile(r"\bStatus\s+AuditInvariants\s*\(")

FAILPOINT_PATTERN = re.compile(r"\bTDS_FAILPOINT_RETURN\s*\(")

# Writes to member-convention identifiers (trailing underscore): direct
# assignment / compound assignment / increment, or a mutating container or
# domain verb called on the member.
MEMBER_WRITE_PATTERN = re.compile(
    r"\b\w+_\s*(?:=(?!=)|\+=|-=|\*=|/=|\+\+|--)"
    r"|\b\w+_\s*(?:\.|->)\s*"
    r"(?:push_back|pop_back|clear|erase|insert|emplace\w*|resize|assign|"
    r"Advance\w*|Trim\w*|Sync\w*|Reset\w*|Set\w+)\s*\("
)

ALLOW_PATTERN = re.compile(r"tds-analyze:\s*allow\(([\w-]+)\)")

# An operation on a tds::Atomic (or raw std::atomic) object: the member /
# variable name, the operation, and the argument list (scanned for
# std::memory_order tokens via paren matching, so multi-line calls work).
ATOMIC_OP_PATTERN = re.compile(
    r"\b(?P<member>\w+)\s*(?:\.|->)\s*"
    r"(?P<op>load|store|exchange|fetch_add|fetch_sub|"
    r"compare_exchange_strong|compare_exchange_weak)\s*\("
)

# Pointer-typed atomic member declarations — the RCU-publish idiom
# (`Atomic<const RouteTable*> route_table_`).
ATOMIC_PTR_MEMBER_PATTERN = re.compile(
    r"\b(?:Instrumented|Plain)?Atomic\s*<[^<>;{}()]*\*\s*>\s+(\w+)\s*[;{=]"
)

FENCE_SITE_PATTERN = re.compile(
    r"\b(?:(?:Instrumented)?AtomicFence|std::atomic_thread_fence)\s*\(\s*"
    r"std::memory_order_(\w+)"
)

ORDER_TOKEN_PATTERN = re.compile(r"std::memory_order_(\w+)")


@dataclass
class MethodDecl:
    cls: str
    name: str
    is_const: bool
    is_static: bool
    returns: str
    path: Path
    line: int
    doc: str
    requires: tuple
    inline_body: str = ""
    decl_text: str = ""


@dataclass
class Definition:
    cls: str
    name: str
    is_const: bool
    path: Path
    line: int
    body: str
    body_line: int
    quals: str
    doc: str


@dataclass
class Acquisition:
    mutex: str
    kind: str
    path: Path
    line: int
    function: str


@dataclass
class AtomicOp:
    member: str
    op: str
    orders: tuple  # memory_order tokens in the argument list; () = defaulted
    path: Path
    line: int


@dataclass
class FenceSite:
    order: str
    path: Path
    line: int


@dataclass
class Facts:
    # (held, acquired) -> first Acquisition proving the edge.
    lock_edges: dict = field(default_factory=dict)
    # (cls, name) -> [MethodDecl] (overloads keep every declaration).
    methods: dict = field(default_factory=dict)
    # (cls, name) -> [Definition]
    definitions: dict = field(default_factory=dict)
    # Every atomic load/store/RMW call site in the tree.
    atomic_ops: list = field(default_factory=list)
    # Member names declared as pointer-typed atomics (RCU-published).
    atomic_ptr_members: set = field(default_factory=set)
    # Every explicit fence call site in the tree.
    fences: list = field(default_factory=list)


@dataclass
class Finding:
    rule: str
    path: Path
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Shared text utilities
# --------------------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving offsets and
    newlines so positions map 1:1 back to the original text."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif ch == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif ch in "\"'":
            quote = ch
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def match_paren(text: str, open_pos: int) -> int:
    """Index just past the parenthesis group opening at open_pos."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def match_brace(text: str, open_pos: int) -> int:
    """Index just past the brace block opening at open_pos."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def doc_comment_above(text: str, decl_line: int) -> str:
    """The ///-or-//-comment block immediately preceding decl_line."""
    lines = text.splitlines()
    doc = []
    i = decl_line - 2
    while i >= 0 and lines[i].lstrip().startswith("//"):
        doc.append(lines[i].strip())
        i -= 1
    return "\n".join(reversed(doc))


def normalize_mutex(expr: str) -> str:
    """`engine->shards_[i].wake_mutex` -> `wake_mutex`: the trailing member
    component names the lock for ordering purposes (all instances of one
    member share one rank)."""
    expr = re.sub(r"\[[^\]]*\]", "", expr.strip())
    expr = expr.strip("&* \t\n")
    for sep in ("->", "."):
        if sep in expr:
            expr = expr.rsplit(sep, 1)[1]
    return expr.strip() or "<unknown>"


def allowed(rule: str, line_text: str) -> bool:
    match = ALLOW_PATTERN.search(line_text)
    return match is not None and match.group(1) == rule


def iter_source_files(root: Path):
    base = root / "src"
    if not base.is_dir():
        return
    for path in sorted(base.rglob("*")):
        if "analyze_fixtures" in path.relative_to(root).parts:
            continue
        if path.is_file() and path.suffix in CXX_SUFFIXES:
            yield path


# --------------------------------------------------------------------------
# Builtin frontend
# --------------------------------------------------------------------------


def parse_class_methods(path: Path, text: str, stripped: str, facts: Facts):
    """Scans class bodies for method declarations (and inline bodies)."""
    for cls_match in re.finditer(
            r"\b(?:class|struct)\s+(?:TDS_\w+\s+)*(\w+)[^;{(]*\{", stripped):
        cls = cls_match.group(1)
        body_open = cls_match.end() - 1
        body_close = match_brace(stripped, body_open)
        scan_method_decls(path, text, stripped, cls,
                          body_open + 1, body_close - 1, facts)


def scan_method_decls(path, text, stripped, cls, start, end, facts):
    i = start
    stmt_start = start
    depth = 0
    while i < end:
        ch = stripped[i]
        if ch == "{":
            i = match_brace(stripped, i)
            stmt_start = i
            continue
        if ch == ";":
            stmt_start = i + 1
            i += 1
            continue
        if ch == "(" and depth == 0:
            stmt = stripped[stmt_start:i]
            name_match = re.search(r"(~?\w+)\s*$", stmt)
            if not name_match:
                i += 1
                continue
            name = name_match.group(1)
            prefix = stmt[:name_match.start()].strip()
            args_end = match_paren(stripped, i)
            # Qualifiers run to the declaration terminator.
            j = args_end
            while j < end and stripped[j] not in ";{":
                if stripped[j] == "(":
                    j = match_paren(stripped, j)
                else:
                    j += 1
            quals = stripped[args_end:j]
            inline_body = ""
            if j < end and stripped[j] == "{":
                body_end = match_brace(stripped, j)
                inline_body = stripped[j:body_end]
                next_i = body_end
            else:
                next_i = j + 1
            decl_line = line_of(stripped, stmt_start + name_match.start(1))
            if name not in (cls, "~" + cls) and not prefix.endswith(
                    ("return", "new")) and re.search(r"\w", prefix):
                requires = tuple(
                    normalize_mutex(arg)
                    for m in REQUIRES_PATTERN.finditer(quals)
                    for arg in m.group(1).split(","))
                decl = MethodDecl(
                    cls=cls,
                    name=name,
                    is_const=re.search(r"\)\s*const\b|\bconst\s*$|^\s*const\b",
                                       quals) is not None,
                    is_static="static" in prefix.split(),
                    returns=prefix,
                    path=path,
                    line=decl_line,
                    doc=doc_comment_above(text, decl_line),
                    requires=requires,
                    inline_body=inline_body,
                    decl_text=text.splitlines()[decl_line - 1]
                    if decl_line <= len(text.splitlines()) else "",
                )
                facts.methods.setdefault((cls, name), []).append(decl)
            i = next_i
            stmt_start = next_i
            continue
        i += 1


def parse_atomic_facts(path: Path, stripped: str, facts: Facts):
    """Atomic call sites, pointer-typed atomic members, and fence sites.

    src/util/atomic.h is exempt: it is the one sanctioned home of raw
    std::atomic (the raw-atomic lint rule enforces that), and its internal
    forwarding calls are not program memory-ordering decisions."""
    if path.name == "atomic.h" and path.parent.name == "util":
        return
    for match in ATOMIC_PTR_MEMBER_PATTERN.finditer(stripped):
        facts.atomic_ptr_members.add(match.group(1))
    for match in ATOMIC_OP_PATTERN.finditer(stripped):
        args_end = match_paren(stripped, match.end() - 1)
        orders = tuple(
            ORDER_TOKEN_PATTERN.findall(stripped[match.end() - 1:args_end]))
        facts.atomic_ops.append(AtomicOp(
            member=match.group("member"),
            op=match.group("op"),
            orders=orders,
            path=path,
            line=line_of(stripped, match.start()),
        ))
    for match in FENCE_SITE_PATTERN.finditer(stripped):
        facts.fences.append(FenceSite(
            order=match.group(1),
            path=path,
            line=line_of(stripped, match.start()),
        ))


def parse_definitions(path: Path, text: str, stripped: str, facts: Facts):
    """Out-of-line `Class::Method(...)` definitions with their bodies."""
    for match in DEFINITION_PATTERN.finditer(stripped):
        args_end = match_paren(stripped, match.end() - 1)
        j = args_end
        while j < len(stripped) and stripped[j] not in ";{":
            if stripped[j] == "(":
                j = match_paren(stripped, j)
            else:
                j += 1
        if j >= len(stripped) or stripped[j] != "{":
            continue  # declaration or pointer-to-member expression
        body_end = match_brace(stripped, j)
        quals = stripped[args_end:j]
        decl_line = line_of(stripped, match.start())
        facts.definitions.setdefault(
            (match.group("cls"), match.group("name")), []).append(
                Definition(
                    cls=match.group("cls"),
                    name=match.group("name"),
                    is_const=re.search(r"\bconst\b", quals) is not None,
                    path=path,
                    line=decl_line,
                    body=stripped[j:body_end],
                    body_line=line_of(stripped, j),
                    quals=quals,
                    doc=doc_comment_above(text, decl_line),
                ))


def scan_lock_scopes(path: Path, stripped: str, facts: Facts,
                     requires_at):
    """Whole-file brace-depth walk maintaining the held-lock stack; every
    acquisition adds edges from each currently-held mutex (stack plus the
    enclosing function's TDS_REQUIRES set)."""
    held = []  # (mutex, depth_at_acquisition)
    depth = 0
    i = 0
    n = len(stripped)
    decls = [(m.start(), m) for m in LOCK_DECL_PATTERN.finditer(stripped)]
    decl_index = 0
    while i < n:
        ch = stripped[i]
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            while held and held[-1][1] > depth:
                held.pop()
        if decl_index < len(decls) and decls[decl_index][0] == i:
            match = decls[decl_index][1]
            decl_index += 1
            mutex = normalize_mutex(match.group(2))
            kind = match.group(1)
            line = line_of(stripped, i)
            function, requires = requires_at(i)
            acquisition = Acquisition(mutex, kind, path, line, function)
            for outer in list(requires) + [m for m, _ in held]:
                if outer == mutex and kind == "ReaderMutexLock":
                    continue  # shared re-entry is not an ordering edge
                facts.lock_edges.setdefault((outer, mutex), acquisition)
            held.append((mutex, depth))
        i += 1


def builtin_extract(root: Path) -> Facts:
    facts = Facts()
    files = []
    for path in iter_source_files(root):
        text = path.read_text(errors="replace")
        stripped = strip_comments_and_strings(text)
        files.append((path, text, stripped))
        parse_class_methods(path, text, stripped, facts)
        parse_definitions(path, text, stripped, facts)
        parse_atomic_facts(path, stripped, facts)

    # TDS_REQUIRES comes from header declarations and from definition
    # signatures; a position inside a definition inherits its function's set.
    header_requires = {}
    for (cls, name), decls in facts.methods.items():
        mutexes = tuple(m for d in decls for m in d.requires)
        if mutexes:
            header_requires[(cls, name)] = mutexes

    for path, text, stripped in files:
        spans = []
        for defs in facts.definitions.values():
            for d in defs:
                if d.path != path:
                    continue
                start = stripped.find(d.body,
                                      max(0, offset_of_line(stripped,
                                                            d.body_line) - 1))
                if start < 0:
                    continue
                req = set(header_requires.get((d.cls, d.name), ()))
                for m in REQUIRES_PATTERN.finditer(d.quals):
                    for arg in m.group(1).split(","):
                        req.add(normalize_mutex(arg))
                spans.append((start, start + len(d.body),
                              f"{d.cls}::{d.name}", tuple(req)))
        # Inline header bodies with requires annotations.
        for decls in facts.methods.values():
            for m in decls:
                if m.path != path or not m.inline_body or not m.requires:
                    continue
                start = stripped.find(m.inline_body)
                if start >= 0:
                    spans.append((start, start + len(m.inline_body),
                                  f"{m.cls}::{m.name}", m.requires))
        spans.sort()

        def requires_at(pos, spans=spans):
            for start, end, func, req in spans:
                if start <= pos < end:
                    return func, req
            return "<file scope>", ()

        scan_lock_scopes(path, stripped, facts, requires_at)
    return facts


def offset_of_line(text: str, line: int) -> int:
    offset = 0
    for _ in range(line - 1):
        nl = text.find("\n", offset)
        if nl < 0:
            return offset
        offset = nl + 1
    return offset


# --------------------------------------------------------------------------
# libclang frontend (best-effort mirror; facts feed the same rule engine)
# --------------------------------------------------------------------------


def libclang_extract(root: Path, compdb: Path, cindex) -> Facts:
    """AST-based extraction: method constness, lock scopes, and call facts
    come from cursors; macro positions (TDS_AUDIT_MUTATION,
    TDS_FAILPOINT_RETURN) from the detailed preprocessing record; the
    TDS_REQUIRES sets reuse the textual scan (the thread-safety attributes
    are not exposed argument-accurately through the Python bindings)."""
    entries = json.loads(compdb.read_text())
    index = cindex.Index.create()
    facts = builtin_extract(root)  # baseline: decls, docs, requires
    facts.lock_edges = {}  # replaced by AST-accurate scopes below

    header_requires = {}
    for (cls, name), decls in facts.methods.items():
        mutexes = tuple(m for d in decls for m in d.requires)
        if mutexes:
            header_requires[(cls, name)] = mutexes

    seen = set()
    src_root = (root / "src").resolve()
    for entry in entries:
        file_path = (Path(entry["directory"]) / entry["file"]).resolve()
        if src_root not in file_path.parents or file_path in seen:
            continue
        seen.add(file_path)
        args = [a for a in entry.get("arguments")
                or entry.get("command", "").split()
                if a not in ("-c", "-o")][1:]
        args = [a for a in args if not a.endswith((".cc", ".o", ".cpp"))]
        tu = index.parse(
            str(file_path), args=args,
            options=cindex.TranslationUnit
            .PARSE_DETAILED_PROCESSING_RECORD)

        def walk_function(cursor):
            qual = cursor.spelling
            parent = cursor.semantic_parent
            if parent is not None and parent.kind.is_declaration():
                qual = f"{parent.spelling}::{cursor.spelling}"
            requires = list(header_requires.get(
                (parent.spelling if parent else "", cursor.spelling), ()))

            def walk_block(node, held):
                local = list(held)
                for child in node.get_children():
                    if child.kind == cindex.CursorKind.DECL_STMT:
                        for decl in child.get_children():
                            type_name = decl.type.spelling.rsplit("::", 1)[-1]
                            if type_name in LOCK_CLASSES:
                                tokens = [t.spelling
                                          for t in decl.get_tokens()]
                                try:
                                    open_idx = tokens.index("(")
                                    expr = "".join(
                                        tokens[open_idx + 1:tokens.index(")")])
                                except ValueError:
                                    expr = "<unknown>"
                                mutex = normalize_mutex(expr)
                                acq = Acquisition(
                                    mutex, type_name,
                                    Path(str(decl.location.file)),
                                    decl.location.line, qual)
                                for outer in local:
                                    if (outer == mutex
                                            and type_name == "ReaderMutexLock"):
                                        continue
                                    facts.lock_edges.setdefault(
                                        (outer, mutex), acq)
                                local.append(mutex)
                    elif child.kind == cindex.CursorKind.COMPOUND_STMT:
                        walk_block(child, local)
                    else:
                        walk_block(child, local)

            walk_block(cursor, requires)

        def visit(cursor):
            if cursor.kind in (cindex.CursorKind.CXX_METHOD,
                               cindex.CursorKind.FUNCTION_DECL,
                               cindex.CursorKind.CONSTRUCTOR,
                               cindex.CursorKind.DESTRUCTOR) \
                    and cursor.is_definition():
                walk_function(cursor)
            for child in cursor.get_children():
                if child.location.file and str(
                        child.location.file).startswith(str(src_root)):
                    visit(child)

        visit(tu.cursor)
    return facts


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------


def rule_lock_order(facts: Facts, out):
    graph = {}
    for (held, acquired), acq in facts.lock_edges.items():
        graph.setdefault(held, {})[acquired] = acq
        if held == acquired and not allowed(
                "lock-order", read_line(acq.path, acq.line)):
            out.append(Finding(
                "lock-order", acq.path, acq.line,
                f"{acq.function} re-acquires {held} while already "
                "holding it (self-deadlock)"))

    # Iterative DFS cycle detection with path reconstruction.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in
             set(graph) | {b for edges in graph.values() for b in edges}}
    stack_path = []

    def dfs(node):
        color[node] = GRAY
        stack_path.append(node)
        for nxt, acq in sorted(graph.get(node, {}).items()):
            if nxt == node:
                continue
            if color[nxt] == GRAY:
                cycle = stack_path[stack_path.index(nxt):] + [nxt]
                if any(allowed("lock-order",
                               read_line(a.path, a.line))
                       for a in provenances(cycle)):
                    continue
                sites = "; ".join(
                    f"{a.path.name}:{a.line} {fr}->{to} in {a.function}"
                    for (fr, to), a in zip(zip(cycle, cycle[1:]),
                                           provenances(cycle)))
                out.append(Finding(
                    "lock-order", acq.path, acq.line,
                    "lock-order cycle "
                    + " -> ".join(cycle) + f" ({sites})"))
                continue
            if color[nxt] == WHITE:
                dfs(nxt)
        stack_path.pop()
        color[node] = BLACK

    def provenances(cycle):
        return [graph[a][b] for a, b in zip(cycle, cycle[1:])]

    for node in sorted(color):
        if color[node] == WHITE:
            dfs(node)


def read_line(path: Path, line: int) -> str:
    try:
        return path.read_text(errors="replace").splitlines()[line - 1]
    except (OSError, IndexError):
        return ""


def rule_const_query(facts: Facts, out):
    for (cls, name), defs in sorted(facts.definitions.items()):
        if name != "Query":
            continue
        nonconst = {
            m.name
            for (mcls, _), decls in facts.methods.items() if mcls == cls
            for m in decls
            if not m.is_const and not m.is_static
            and m.name not in (cls, "~" + cls)
        }
        for d in defs:
            if not d.is_const or not nonconst:
                continue
            check_const_body(cls, d, d.body, d.body_line, nonconst, out)
    # Inline const Query bodies declared in headers.
    for (cls, name), decls in sorted(facts.methods.items()):
        if name != "Query":
            continue
        nonconst = {
            m.name
            for (mcls, _), ds in facts.methods.items() if mcls == cls
            for m in ds
            if not m.is_const and not m.is_static
            and m.name not in (cls, "~" + cls)
        }
        for m in decls:
            if m.is_const and m.inline_body and nonconst:
                check_const_body(cls, m, m.inline_body, m.line, nonconst, out)


def check_const_body(cls, where, body, body_line, nonconst, out):
    for target in sorted(nonconst):
        for pattern in (rf"(?<![\w.>]){re.escape(target)}\s*\(",
                        rf"this->\s*{re.escape(target)}\s*\("):
            for match in re.finditer(pattern, body):
                line = body_line + body.count("\n", 0, match.start())
                if allowed("const-query", read_line(where.path, line)):
                    continue
                out.append(Finding(
                    "const-query", where.path, line,
                    f"{cls}::Query is const but calls non-const "
                    f"{cls}::{target}"))


def rule_audit_hook(facts: Facts, out):
    audited_classes = {
        cls for (cls, name) in facts.methods if name == "AuditInvariants"
    }
    for (cls, name), decls in sorted(facts.methods.items()):
        if cls not in audited_classes or name == "AuditInvariants":
            continue
        for m in decls:
            if m.is_const or m.is_static:
                continue
            returns = m.returns.split()[-1] if m.returns.split() else ""
            if returns != "Status":
                continue
            if allowed("audit-hook", m.decl_text):
                continue
            bodies = [m.inline_body] if m.inline_body else [
                d.body for d in facts.definitions.get((cls, name), [])
                if not allowed("audit-hook", read_line(d.path, d.line))
            ]
            if not bodies:
                continue  # declared but not defined in the scanned tree
            if any("TDS_AUDIT_MUTATION" in b or "AuditInvariants" in b
                   for b in bodies):
                continue
            out.append(Finding(
                "audit-hook", m.path, m.line,
                f"{cls}::{name} is a Status-returning mutator on an "
                "audited class but neither runs TDS_AUDIT_MUTATION nor "
                "calls AuditInvariants"))


def rule_failpoint_order(facts: Facts, out):
    for (cls, name), defs in sorted(facts.definitions.items()):
        decl_doc = "\n".join(
            m.doc for m in facts.methods.get((cls, name), []))
        for d in defs:
            fp = FAILPOINT_PATTERN.search(d.body)
            if not fp:
                continue
            doc = (decl_doc + "\n" + d.doc).lower()
            if "unchanged" not in doc:
                continue
            prefix = d.body[:fp.start()]
            for match in MEMBER_WRITE_PATTERN.finditer(prefix):
                line = d.body_line + d.body.count("\n", 0, match.start())
                if allowed("failpoint-order", read_line(d.path, line)):
                    continue
                out.append(Finding(
                    "failpoint-order", d.path, line,
                    f"{cls}::{name} is documented unchanged-on-error but "
                    "writes member state before TDS_FAILPOINT_RETURN"))


def rule_memory_order(facts: Facts, out):
    # (1) Hot-path operations (src/engine) must state their order. The
    # wrappers default to seq_cst like std::atomic, so a bare call is
    # correct-but-mute: the reader cannot tell a load-bearing seq_cst (the
    # Dekker sites in engine.cc) from one nobody thought about.
    for op in facts.atomic_ops:
        if "engine" in op.path.parts and not op.orders:
            if allowed("memory-order", read_line(op.path, op.line)):
                continue
            out.append(Finding(
                "memory-order", op.path, op.line,
                f"defaulted seq_cst on hot-path {op.member}.{op.op}(); "
                "state the order explicitly and name its pairing edge"))

    # (2) Pointer-typed atomic members are RCU publishes: the pointee's
    # fields are only visible through the release-store -> acquire-load
    # edge, so a relaxed access on either side is a latent data race even
    # when every run happens to work.
    for op in facts.atomic_ops:
        if op.member not in facts.atomic_ptr_members:
            continue
        if op.op not in ("load", "store", "exchange"):
            continue
        # For store/exchange the success order is the first token.
        effective = op.orders[0] if op.orders else "seq_cst"
        if effective != "relaxed":
            continue
        if allowed("memory-order", read_line(op.path, op.line)):
            continue
        side = ("relaxed load of RCU-published pointer "
                f"{op.member} (needs acquire to see the pointee's fields)"
                if op.op == "load" else
                f"relaxed publish of RCU-published pointer {op.member} "
                "(dropping the release severs the happens-before edge "
                "to readers)")
        out.append(Finding("memory-order", op.path, op.line, side))

    # (3) Fences pair across files — a release fence in one translation
    # unit synchronizes with an acquire fence in another, which is exactly
    # why no per-file check can notice a missing half. acq_rel / seq_cst
    # fences count as both halves.
    releases = [f for f in facts.fences
                if f.order in ("release", "acq_rel", "seq_cst")]
    acquires = [f for f in facts.fences
                if f.order in ("acquire", "acq_rel", "seq_cst")]
    for fence, missing in (
            [(f, "acquire") for f in releases if not acquires]
            + [(f, "release") for f in acquires if not releases]):
        if allowed("memory-order", read_line(fence.path, fence.line)):
            continue
        out.append(Finding(
            "memory-order", fence.path, fence.line,
            f"{fence.order} fence has no paired {missing} fence anywhere "
            "in the tree; an unpaired fence orders nothing"))


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def load_libclang():
    """Returns the clang.cindex module, or None with a printed notice."""
    try:
        from clang import cindex  # noqa: PLC0415
    except ImportError:
        return None
    try:
        cindex.Index.create()
    except Exception:  # library not found / version mismatch
        return None
    return cindex


def analyze(root: Path, frontend: str, compdb: Path):
    cindex = None
    if frontend in ("auto", "libclang"):
        cindex = load_libclang()
        if cindex is None:
            if frontend == "libclang":
                return None, "libclang requested but clang.cindex is unusable"
            print("tds_analyze: notice: clang python bindings unavailable; "
                  "using the builtin frontend")
    if cindex is not None and compdb.is_file():
        try:
            facts = libclang_extract(root, compdb, cindex)
        except Exception as err:  # pragma: no cover - environment-specific
            print(f"tds_analyze: notice: libclang frontend failed ({err}); "
                  "falling back to the builtin frontend")
            facts = builtin_extract(root)
    else:
        if cindex is not None:
            print(f"tds_analyze: notice: no compilation database at "
                  f"{compdb}; using the builtin frontend")
        facts = builtin_extract(root)

    out = []
    rule_lock_order(facts, out)
    rule_const_query(facts, out)
    rule_audit_hook(facts, out)
    rule_failpoint_order(facts, out)
    rule_memory_order(facts, out)
    return out, None


def selftest(repo_root: Path, compdb: Path) -> int:
    """Every fixture tree must trigger exactly its rule (the deliberate
    violations are rejected) and the real tree must pass clean."""
    fixtures = repo_root / "tools" / "analyze_fixtures"
    expected = {
        "lock-order": fixtures / "lock_order",
        "const-query": fixtures / "const_query",
        "audit-hook": fixtures / "audit_hook",
        "failpoint-order": fixtures / "failpoint_order",
        "memory-order": fixtures / "memory_order",
    }
    failures = 0
    for rule, tree in expected.items():
        if not tree.is_dir():
            print(f"selftest: missing fixture tree {tree}", file=sys.stderr)
            failures += 1
            continue
        found, err = analyze(tree, "builtin", compdb)
        if err:
            print(f"selftest: {err}", file=sys.stderr)
            return 1
        hits = [f for f in found if f.rule == rule]
        strays = [f for f in found if f.rule != rule]
        if not hits:
            print(f"selftest: fixture {tree.name} did NOT trigger {rule}",
                  file=sys.stderr)
            failures += 1
        if strays:
            for finding in strays:
                print(f"selftest: stray finding: {finding}", file=sys.stderr)
            failures += 1
        if hits and not strays:
            print(f"selftest: {rule}: fixture rejected as intended")
    found, err = analyze(repo_root, "builtin", compdb)
    if err:
        print(f"selftest: {err}", file=sys.stderr)
        return 1
    if found:
        for finding in found:
            print(finding, file=sys.stderr)
        print("selftest: real tree is not clean", file=sys.stderr)
        failures += 1
    else:
        print("selftest: real tree clean")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="tree to analyze (default: the repository root)")
    parser.add_argument(
        "--frontend", choices=("auto", "libclang", "builtin"),
        default="auto",
        help="fact extractor: libclang AST when available, or the "
        "dependency-free builtin parser")
    parser.add_argument(
        "--compdb", type=Path, default=None,
        help="compilation database for the libclang frontend "
        "(default: <root>/build/compile_commands.json)")
    parser.add_argument(
        "--selftest", action="store_true",
        help="verify each rule rejects its fixture violation, then "
        "analyze the real tree")
    args = parser.parse_args()
    root = args.root.resolve()
    compdb = (args.compdb or root / "build" /
              "compile_commands.json").resolve()
    if args.selftest:
        return selftest(root, compdb)
    findings, err = analyze(root, args.frontend, compdb)
    if err:
        # Explicit-frontend unavailability is a visible skip, not a failure:
        # the caller asked for an analysis this toolchain cannot run.
        print(f"tds_analyze: skipping: {err}")
        return 0
    for finding in findings:
        print(finding)
    if findings:
        print(f"tds_analyze: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("tds_analyze: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
