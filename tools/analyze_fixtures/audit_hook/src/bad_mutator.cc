#include "bad_mutator.h"

namespace fixture {

Status Ledger::Apply(int delta) {
  total_ += delta;
  return Status::OK();
}

Status Ledger::AuditInvariants() const { return Status::OK(); }

}  // namespace fixture
