// Deliberate violation fixture for tds_analyze.py --selftest: an audited
// class (declares AuditInvariants) whose fallible mutator neither runs
// TDS_AUDIT_MUTATION nor calls AuditInvariants.
#ifndef FIXTURE_BAD_MUTATOR_H_
#define FIXTURE_BAD_MUTATOR_H_

#include "util/status.h"

namespace fixture {

class Ledger {
 public:
  Status AuditInvariants() const;

  /// Applies a delta to the running total.
  Status Apply(int delta);

 private:
  long total_ = 0;
};

}  // namespace fixture

#endif  // FIXTURE_BAD_MUTATOR_H_
