// Deliberate violation fixture for tds_analyze.py --selftest: two
// functions acquire the same pair of mutexes in opposite orders, the
// classic AB/BA deadlock. The analyzer must reject the cycle.
#include "util/mutex.h"

namespace fixture {

Mutex g_alpha;
Mutex g_beta;

void First() {
  MutexLock alpha(g_alpha);
  MutexLock beta(g_beta);
}

void Second() {
  MutexLock beta(g_beta);
  MutexLock alpha(g_alpha);
}

}  // namespace fixture
