// Analyze fixture: memory-order violations the rule must reject, one per
// sub-check. The Publish/Read pair is the seeded route-table bug shape —
// the same dropped release the RoutePublishSuite model-check test
// (tests/modelcheck_suites_test.cc) catches dynamically as a data race.
#ifndef TDS_ANALYZE_FIXTURE_BAD_ORDERS_H_
#define TDS_ANALYZE_FIXTURE_BAD_ORDERS_H_

#include <cstdint>

#include "util/atomic.h"

namespace tds_fixture {

struct RouteTable {
  std::uint32_t generation;
};

class BadOrders {
 public:
  void Publish(const RouteTable* next) {
    // Sub-check 2: relaxed publish of an RCU pointer (dropped release).
    table_.store(next, std::memory_order_relaxed);
  }

  const RouteTable* Route() {
    // Sub-check 2: relaxed load of an RCU pointer (dropped acquire).
    return table_.load(std::memory_order_relaxed);
  }

  void Count() {
    // Sub-check 1: defaulted seq_cst on a hot-path (src/engine) op.
    hits_.fetch_add(1);
  }

  void HalfBarrier() {
    // Sub-check 3: release fence with no acquire fence anywhere.
    tds::AtomicFence(std::memory_order_release);
  }

 private:
  tds::Atomic<const RouteTable*> table_{nullptr};
  tds::Atomic<std::uint64_t> hits_{0};
};

}  // namespace tds_fixture

#endif  // TDS_ANALYZE_FIXTURE_BAD_ORDERS_H_
