#include "bad_failpoint.h"

namespace fixture {

Status Journal::Append(int entry) {
  size_ += 1;
  TDS_FAILPOINT_RETURN("journal.append");
  entries_[size_ - 1] = entry;
  return Status::OK();
}

}  // namespace fixture
