// Deliberate violation fixture for tds_analyze.py --selftest: a method
// documented unchanged-on-error writes member state before its failpoint,
// so an injected fault would leave the object half-mutated.
#ifndef FIXTURE_BAD_FAILPOINT_H_
#define FIXTURE_BAD_FAILPOINT_H_

#include "util/failpoint.h"
#include "util/status.h"

namespace fixture {

class Journal {
 public:
  /// Appends the entry; on error this journal is unchanged.
  Status Append(int entry);

 private:
  int size_ = 0;
  int entries_[16] = {};
};

}  // namespace fixture

#endif  // FIXTURE_BAD_FAILPOINT_H_
