// Deliberate violation fixture for tds_analyze.py --selftest: a const
// Query that refreshes a cache through a non-const member — a data race
// once snapshots are read concurrently.
#ifndef FIXTURE_BAD_QUERY_H_
#define FIXTURE_BAD_QUERY_H_

namespace fixture {

class CachedSum {
 public:
  double Query(long now) const;

  /// Recomputes the cached value at `now`.
  void RefreshCache(long now);

 private:
  double cache_ = 0.0;
};

}  // namespace fixture

#endif  // FIXTURE_BAD_QUERY_H_
