#include "bad_query.h"

namespace fixture {

// (Fixture trees are analyzed, never compiled: the direct non-const call
// below is exactly the mutation-from-const shape the rule rejects.)
double CachedSum::Query(long now) const {
  RefreshCache(now);
  return cache_;
}

void CachedSum::RefreshCache(long now) { cache_ = static_cast<double>(now); }

}  // namespace fixture
