// Lint fixture: wall-clock reads and ambient randomness in src/core must
// be rejected (rule: wall-clock).
#include <chrono>
#include <cstdlib>

namespace tds_fixture {

long BadClock() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return now.count() + rand();
}

}  // namespace tds_fixture
