// Lint fixture: raw standard-library atomics outside src/util/atomic.h
// must be rejected (rule: raw-atomic). Each flagged line is a distinct
// shape the rule has to catch: the header include, an atomic object, a
// free fence. Prose mentions of the std names (like this comment's) are
// stripped before matching and must NOT be flagged.
#ifndef TDS_LINT_FIXTURE_BAD_ATOMIC_H_
#define TDS_LINT_FIXTURE_BAD_ATOMIC_H_

#include <atomic>

namespace tds_fixture {

class BadAtomic {
 public:
  void Publish() {
    std::atomic_thread_fence(std::memory_order_release);
    ready_.store(1);
  }

 private:
  std::atomic<int> ready_{0};
};

}  // namespace tds_fixture

#endif  // TDS_LINT_FIXTURE_BAD_ATOMIC_H_
