// Lint fixture: an ownerless TODO must be rejected (rule: todo-owner).
// TODO: make this better someday
namespace tds_fixture {}
