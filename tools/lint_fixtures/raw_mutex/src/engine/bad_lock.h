// Lint fixture: raw standard-library lock primitives outside
// src/util/mutex.h must be rejected (rule: raw-mutex).
#ifndef TDS_LINT_FIXTURE_BAD_LOCK_H_
#define TDS_LINT_FIXTURE_BAD_LOCK_H_

#include <mutex>

namespace tds_fixture {

class BadLock {
 private:
  std::mutex mu_;
};

}  // namespace tds_fixture

#endif  // TDS_LINT_FIXTURE_BAD_LOCK_H_
