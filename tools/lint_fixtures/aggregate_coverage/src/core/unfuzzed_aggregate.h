// Lint fixture: a DecayedAggregate implementation that DOES declare
// AuditInvariants but is named by no fuzz driver must still be rejected
// (rule: aggregate-coverage, fuzz-coverage arm) — declaring the audit hook
// alone is not enough; some driver in tests/fuzz/ has to call the type by
// name. The fixture tree has an empty tests/fuzz/.
#ifndef TDS_LINT_FIXTURE_UNFUZZED_AGGREGATE_H_
#define TDS_LINT_FIXTURE_UNFUZZED_AGGREGATE_H_

namespace tds_fixture {

class UnfuzzedAggregate : public DecayedAggregate {
 public:
  double Query(long now) const;
  Status AuditInvariants() const;
};

}  // namespace tds_fixture

#endif  // TDS_LINT_FIXTURE_UNFUZZED_AGGREGATE_H_
