// Lint fixture: a DecayedAggregate implementation with no AuditInvariants
// declaration and no fuzz driver must be rejected (rule:
// aggregate-coverage). The fixture tree has an empty tests/fuzz/.
#ifndef TDS_LINT_FIXTURE_ORPHAN_AGGREGATE_H_
#define TDS_LINT_FIXTURE_ORPHAN_AGGREGATE_H_

namespace tds_fixture {

class OrphanAggregate : public DecayedAggregate {
 public:
  double Query(long now) const;
};

}  // namespace tds_fixture

#endif  // TDS_LINT_FIXTURE_ORPHAN_AGGREGATE_H_
