// Fixture: an unbounded yield-spin retry loop in engine code — the idiom
// the spin-loop rule exists to reject (it burns a full core for the whole
// stall instead of going through StagedWait's bounded spin + parked wait).
#include <thread>

#include "util/atomic.h"

namespace tds {

void WaitForSpace(const Atomic<bool>& has_space) {
  while (!has_space.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

}  // namespace tds
