// Fixture violation: feeding the engine through the deprecated
// engine-global shim instead of a ProducerSession.
#include "engine/engine.h"

namespace tds {

void FeedLegacy(ShardedAggregateEngine& engine) {
  const KeyedItem item{1, 1, 1};
  (void)engine.IngestBatch({&item, 1});
}

}  // namespace tds
