// Deliberate violation fixture for tds_lint.py --selftest: a fuzz driver
// with only the deterministic gtest leg — no LLVMFuzzerTestOneInput, no
// tds_add_fuzz_test() registration, no seed corpus.
#include <gtest/gtest.h>

TEST(BadFuzzTest, OnlyDeterministicMode) { EXPECT_TRUE(true); }
