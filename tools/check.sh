#!/bin/sh
# tools/check.sh — one command for the full correctness-tooling matrix
# (docs/CORRECTNESS.md). CI runs exactly this script so local runs and CI
# cannot drift.
#
# Usage:
#   tools/check.sh [stage...]
#
# Stages (default and "all": release asan tsan faults tidy thread-safety
# lint analyze chaos coverage fuzz):
#   release   Release build + full ctest suite (tier-1 verify).
#   asan      ASan+UBSan build with -DTDS_AUDIT=ON (structural invariant
#             audits after every mutation) + full ctest suite.
#   tsan      ThreadSanitizer build + full ctest suite — the required
#             sanitizer coverage for the sharded engine's concurrent code
#             (engine_concurrency_test: multi-producer ingest, snapshot
#             readers, and the rebalancer racing the writer threads).
#   faults    Fault-injection matrix: ASan+UBSan build with
#             -DTDS_FAILPOINTS=ON so the deterministic failpoints
#             (util/failpoint.h) compile in, then the fault/checkpoint/
#             backpressure suites and the fault fuzz driver — every
#             injected failure must surface as a clean Status, never a
#             crash, hang, leak, or audit violation.
#   tidy      clang-tidy over src/ with the checked-in .clang-tidy, using
#             the asan build's compilation database. Skipped with a notice
#             when clang-tidy is not installed (the container image may not
#             ship it); CI installs it.
#   thread-safety
#             Clang Thread Safety Analysis as errors over src/ (the
#             annotations in util/thread_annotations.h are no-ops off
#             Clang, so this is the leg that actually checks the locking
#             contracts), plus the negative-compile proof that an
#             unguarded access is rejected. Skipped with a notice when
#             clang++ is not installed; CI installs it.
#   lint      Project-rule linter (tools/tds_lint.py) and its selftest:
#             aggregate audit/fuzz coverage, no raw std::mutex outside
#             util/mutex.h, no raw std::atomic outside util/atomic.h (the
#             model-check instrumentation seam), no wall-clock or ambient
#             randomness in src/core + src/engine, no ownerless task
#             markers, every fuzz driver registered in both execution
#             modes.
#   analyze   Semantic analyzer (tools/tds_analyze.py) and its selftest:
#             lock-acquisition-order cycles, const-Query purity,
#             audit-hooked Status mutators, no-write-before-failpoint,
#             and the memory-order audit (explicit orders on hot-path
#             atomics, no relaxed RCU pointer access, cross-file fence
#             pairing).
#             Uses the libclang AST frontend when the clang python
#             bindings are installed, else the builtin frontend — both
#             enforce the same rules, so this stage never skips.
#   modelcheck
#             Stateless model checker (src/modelcheck/, docs/CORRECTNESS.md
#             "Model checking"): -DTDS_MODELCHECK=ON routes every
#             tds::Atomic operation through the bounded-exploration
#             scheduler, then runs the checker's own unit suite
#             (vector-clock algebra, sleep sets, replay determinism) and
#             the protocol suites — SpscRing FIFO + cursor wrap, RCU route
#             publish, the park/wake handshake, stop-vs-ingest — which
#             exhaustively or boundedly enumerate the interleavings and
#             prove the engine's memory-order choices minimal.
#   chaos     Schedule-perturbation race amplifier: TSan build with
#             -DTDS_SCHED_CHAOS=ON so every TDS_INTERLEAVE_POINT
#             (util/schedule_chaos.h) yields/sleeps on a seeded schedule,
#             then the engine concurrency + ring suites. Catches
#             interleavings a quiet TSan run rarely reaches; the seed is
#             pinned so a failure replays.
#   coverage  gcov line-coverage reports over src/core and src/histogram
#             from the fuzz-driver leg (-DTDS_COVERAGE=ON build), each with
#             a hard floor enforced by tools/coverage_report.py — the guard
#             that keeps the fuzz drivers actually exercising the core
#             sketches and both histogram layouts.
#   fuzz      Coverage-guided fuzzing smoke: clang + -DTDS_LIBFUZZER=ON
#             builds every tests/fuzz driver as a libFuzzer target
#             (ASan+UBSan+audits riding along), then runs each briefly
#             from its seed corpus (tests/fuzz/corpus/). Skipped with a
#             notice when clang++ is not installed; CI installs it.
#
# Every stage builds out-of-tree (build-release/, build-asan/, build-tsan/)
# so the matrix never pollutes the default build/ directory.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
STAGES="${*:-release asan tsan faults tidy thread-safety lint analyze modelcheck chaos coverage fuzz}"
if [ "$STAGES" = "all" ]; then
  STAGES="release asan tsan faults tidy thread-safety lint analyze modelcheck chaos coverage fuzz"
fi

log() { printf '\n== check.sh: %s ==\n' "$*"; }

build_and_test() {
  # build_and_test <dir> <extra cmake flags...>
  dir="$ROOT/$1"
  shift
  cmake -S "$ROOT" -B "$dir" -DTDS_WERROR=ON "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

for stage in $STAGES; do
  case "$stage" in
    release)
      log "Release build + ctest"
      build_and_test build-release -DCMAKE_BUILD_TYPE=Release
      ;;
    asan)
      log "ASan+UBSan build (audits on) + ctest"
      build_and_test build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTDS_SANITIZE="address;undefined" -DTDS_AUDIT=ON
      # The merge/rebalance differential and fuzz layer must exist in this
      # leg (audits armed): --no-tests=error turns "the tests silently
      # vanished" into a hard failure.
      log "ASan leg: engine merge differential + fuzz drivers present"
      ctest --test-dir "$ROOT/build-asan" --output-on-failure \
        --no-tests=error -R 'EngineMerge|MergedSnapshot|RegistryMerge'
      # The flat-vs-chain layout differential and its fuzz driver carry
      # the bit-identity proof for the SoA histogram rework — they must
      # run with audits armed, and must never silently vanish.
      log "ASan leg: flat-layout differential + fuzz driver present"
      ctest --test-dir "$ROOT/build-asan" --output-on-failure \
        --no-tests=error -R 'FlatLayoutDifferential|FlatEhFuzz|PrefetchOracle'
      ;;
    tsan)
      log "TSan build + ctest"
      build_and_test build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTDS_SANITIZE=thread
      log "TSan leg: engine merge differential + fuzz drivers present"
      ctest --test-dir "$ROOT/build-tsan" --output-on-failure \
        --no-tests=error \
        -R 'EngineMerge|MergedSnapshot|RebalanceRaces|Oversubscribed|SessionFlushesRace'
      # Thread-local cascade scratch (flat_store.h) must hold under TSan:
      # the layout differential and prefetch oracle exercise it from the
      # engine's writer threads.
      log "TSan leg: flat-layout differential + prefetch oracle present"
      ctest --test-dir "$ROOT/build-tsan" --output-on-failure \
        --no-tests=error -R 'FlatLayoutDifferential|FlatEhFuzz|PrefetchOracle'
      ;;
    faults)
      log "Fault-injection build (failpoints + ASan+UBSan + audits) + ctest"
      build_and_test build-faults -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTDS_FAILPOINTS=ON -DTDS_SANITIZE="address;undefined" -DTDS_AUDIT=ON
      # The fault matrix must actually run in this build (elsewhere the
      # suites GTEST_SKIP without failpoints): --no-tests=error turns a
      # silently-skipped matrix into a hard failure.
      log "faults leg: fault matrix + checkpoint/backpressure suites present"
      ctest --test-dir "$ROOT/build-faults" --output-on-failure \
        --no-tests=error \
        -R 'EngineFault|CheckpointTest|BackpressureTest|CheckpointLog|Standby'
      # The flat-layout twins must also survive the failpoint build (the
      # decode funnels they drive are failpoint-instrumented).
      log "faults leg: flat-layout differential + fuzz driver present"
      ctest --test-dir "$ROOT/build-faults" --output-on-failure \
        --no-tests=error -R 'FlatLayoutDifferential|FlatEhFuzz'
      ;;
    tidy)
      if ! command -v clang-tidy >/dev/null 2>&1; then
        log "clang-tidy not installed; skipping the lint stage"
        continue
      fi
      log "clang-tidy over src/"
      # Reuse (or create) the asan build for its compile_commands.json.
      if [ ! -f "$ROOT/build-asan/compile_commands.json" ]; then
        cmake -S "$ROOT" -B "$ROOT/build-asan" \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DTDS_SANITIZE="address;undefined" -DTDS_AUDIT=ON -DTDS_WERROR=ON
      fi
      if command -v run-clang-tidy >/dev/null 2>&1; then
        run-clang-tidy -quiet -p "$ROOT/build-asan" -j "$JOBS" \
          "^$ROOT/src/.*" "^$ROOT/tools/.*"
      else
        find "$ROOT/src" "$ROOT/tools" -name '*.cc' -print0 |
          xargs -0 -n 1 -P "$JOBS" clang-tidy -quiet -p "$ROOT/build-asan"
      fi
      ;;
    thread-safety)
      if ! command -v clang++ >/dev/null 2>&1; then
        log "clang++ not installed; skipping the thread-safety stage"
        continue
      fi
      log "Clang thread-safety analysis over src/ (as errors)"
      cmake -S "$ROOT" -B "$ROOT/build-tsa" \
        -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTDS_THREAD_SAFETY=ON
      # The library target covers all of src/; no suppressions exist in
      # engine code (tds_lint's raw-mutex rule keeps locking in the
      # annotated wrappers).
      cmake --build "$ROOT/build-tsa" -j "$JOBS" --target tds
      log "thread-safety negative-compile proof"
      sh "$ROOT/tests/negative/thread_safety_negative_test.sh" "$ROOT"
      ;;
    lint)
      log "project-rule linter (tds_lint.py) + selftest"
      python3 "$ROOT/tools/tds_lint.py" --root "$ROOT"
      python3 "$ROOT/tools/tds_lint.py" --selftest --root "$ROOT"
      ;;
    analyze)
      log "semantic analyzer (tds_analyze.py) + selftest"
      python3 "$ROOT/tools/tds_analyze.py" --selftest --root "$ROOT"
      # Hand the analyzer a compilation database so a clang-equipped host
      # exercises the libclang AST frontend; without the bindings it
      # prints a notice and runs the builtin frontend on the same rules.
      if [ ! -f "$ROOT/build-asan/compile_commands.json" ]; then
        cmake -S "$ROOT" -B "$ROOT/build-asan" \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DTDS_SANITIZE="address;undefined" -DTDS_AUDIT=ON -DTDS_WERROR=ON
      fi
      python3 "$ROOT/tools/tds_analyze.py" --root "$ROOT" \
        --compdb "$ROOT/build-asan/compile_commands.json"
      log "seed-corpus freshness (make_fuzz_corpus.py --check)"
      python3 "$ROOT/tools/make_fuzz_corpus.py" --check
      ;;
    modelcheck)
      log "model checker (TDS_MODELCHECK=ON): scheduler unit + protocol suites"
      cmake -S "$ROOT" -B "$ROOT/build-modelcheck" -DTDS_WERROR=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DTDS_MODELCHECK=ON
      cmake --build "$ROOT/build-modelcheck" -j "$JOBS" \
        --target modelcheck_unit_test modelcheck_suites_test
      # --no-tests=error: the suites only exist under TDS_MODELCHECK=ON,
      # so "zero tests matched" means the gate silently vanished.
      ctest --test-dir "$ROOT/build-modelcheck" --output-on-failure \
        --no-tests=error \
        -R 'ModelCheck|SpscRingSuite|RoutePublishSuite|ParkWakeSuite|StopIngestSuite|CoverageFloor'
      ;;
    chaos)
      log "TSan + schedule chaos (TDS_SCHED_CHAOS=ON, pinned seed) + engine suites"
      cmake -S "$ROOT" -B "$ROOT/build-chaos" -DTDS_WERROR=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DTDS_SANITIZE=thread \
        -DTDS_SCHED_CHAOS=ON
      cmake --build "$ROOT/build-chaos" -j "$JOBS" \
        --target engine_concurrency_test spsc_ring_test util_test
      # The perturbed interleavings must leave results byte-identical:
      # the same suites that pass quiet TSan must pass chaotic TSan.
      TDS_SCHED_CHAOS_SEED="${TDS_SCHED_CHAOS_SEED:-1}" \
        ctest --test-dir "$ROOT/build-chaos" --output-on-failure \
        --no-tests=error -R 'ShardedEngine|SpscRing|ScheduleChaos'
      ;;
    coverage)
      log "fuzz-driver line coverage over src/core (gcov) + floor"
      cmake -S "$ROOT" -B "$ROOT/build-cov" -DTDS_WERROR=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DTDS_COVERAGE=ON
      cmake --build "$ROOT/build-cov" -j "$JOBS" --target \
        core_fuzz_test eh_fuzz_test ceh_fuzz_test wbmh_fuzz_test \
        mvd_fuzz_test snapshot_fuzz_test registry_fuzz_test \
        engine_merge_fuzz_test engine_fault_fuzz_test flat_eh_fuzz_test \
        checkpoint_log_fuzz_test
      ctest --test-dir "$ROOT/build-cov" -j "$JOBS" --output-on-failure \
        --no-tests=error -R 'Fuzz'
      # Floor set from a measured 78%: tightening it requires new fuzz
      # coverage, loosening it requires editing this line in review.
      python3 "$ROOT/tools/coverage_report.py" \
        --build-dir "$ROOT/build-cov" --filter src/core --floor 70
      # The histogram layer (flat store + EH + chain layout) gets its own
      # floor so the flat-layout fuzz surface cannot quietly rot.
      python3 "$ROOT/tools/coverage_report.py" \
        --build-dir "$ROOT/build-cov" --filter src/histogram --floor 70
      ;;
    fuzz)
      if ! command -v clang++ >/dev/null 2>&1; then
        log "clang++ not installed; skipping the libFuzzer fuzz stage"
        continue
      fi
      log "libFuzzer smoke over tests/fuzz drivers (clang, ASan+UBSan+audits)"
      cmake -S "$ROOT" -B "$ROOT/build-fuzz" -DTDS_WERROR=ON \
        -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTDS_LIBFUZZER=ON -DTDS_SANITIZE="address;undefined" \
        -DTDS_AUDIT=ON -DTDS_FAILPOINTS=ON
      cmake --build "$ROOT/build-fuzz" -j "$JOBS" --target \
        core_fuzz_test_fuzzer eh_fuzz_test_fuzzer ceh_fuzz_test_fuzzer \
        wbmh_fuzz_test_fuzzer mvd_fuzz_test_fuzzer \
        snapshot_fuzz_test_fuzzer registry_fuzz_test_fuzzer \
        engine_merge_fuzz_test_fuzzer engine_fault_fuzz_test_fuzzer \
        flat_eh_fuzz_test_fuzzer checkpoint_log_fuzz_test_fuzzer
      # Bounded smoke: each driver replays its seed corpus, then fuzzes
      # briefly with coverage feedback. CI keeps this short; drop the cap
      # for a real fuzzing session.
      FUZZ_SECONDS="${FUZZ_SECONDS:-10}"
      for driver in core_fuzz_test eh_fuzz_test ceh_fuzz_test \
          wbmh_fuzz_test mvd_fuzz_test snapshot_fuzz_test \
          registry_fuzz_test engine_merge_fuzz_test \
          engine_fault_fuzz_test flat_eh_fuzz_test checkpoint_log_fuzz_test
      do
        log "fuzz: $driver (${FUZZ_SECONDS}s)"
        "$ROOT/build-fuzz/tests/fuzz/${driver}_fuzzer" \
          -max_total_time="$FUZZ_SECONDS" -rss_limit_mb=4096 \
          -print_final_stats=1 \
          "$ROOT/tests/fuzz/corpus/$driver"
      done
      ;;
    *)
      echo "check.sh: unknown stage '$stage'" >&2
      echo "known stages: release asan tsan faults tidy thread-safety" \
        "lint analyze modelcheck chaos coverage fuzz all" >&2
      exit 2
      ;;
  esac
done

log "all requested stages passed"
