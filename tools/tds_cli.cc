// tds_cli — maintain time-decaying aggregates over a text stream.
//
// Reads "tick value" pairs (one per line; '#' comments and blank lines
// ignored; ticks non-decreasing) from a file or stdin and maintains a
// decayed sum with the configured decay function and backend. Prints the
// estimate at every probe interval and a final summary. Snapshots can be
// written/loaded so a stream can be processed across invocations.
//
// With --engine=SHARDS the input is "tick key value" triples instead: they
// are fed through the sharded multi-stream engine (batch ingest, periodic
// skew-triggered rebalancing), and the final report is an engine-wide
// merged snapshot — cut tick, per-shard occupancy, and the top keys by
// decayed weight.
//
// Examples:
//   tds_cli --decay=poly:1.5 --epsilon=0.1 < stream.txt
//   tds_cli --decay=exp:0.01 --backend=ewma --probe=1000 stream.txt
//   tds_cli --decay=sliwin:4096 --save=state.tds stream_part1.txt
//   tds_cli --decay=sliwin:4096 --load=state.tds stream_part2.txt
//   tds_cli --decay=sliwin:4096 --engine=4 --topk=20 keyed_stream.txt
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/snapshot.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "engine/checkpoint.h"
#include "engine/checkpoint_log.h"
#include "engine/engine.h"
#include "engine/producer_session.h"
#include "engine/merged_snapshot.h"
#include "engine/standby.h"

namespace {

using namespace tds;

void Usage() {
  std::fprintf(
      stderr,
      "usage: tds_cli [options] [input-file]\n"
      "  --decay=KIND:PARAM   exp:<lambda> | poly:<alpha> | sliwin:<W>\n"
      "                       (default poly:1.0)\n"
      "  --backend=NAME       auto|exact|ewma|recent|ceh|coarse|wbmh\n"
      "  --epsilon=E          accuracy target (default 0.1)\n"
      "  --probe=P            print the estimate every P ticks (default 0:\n"
      "                       only the final estimate)\n"
      "  --save=FILE          write a snapshot after the stream ends\n"
      "  --load=FILE          resume from a snapshot before reading\n"
      "  --engine=SHARDS      sharded engine mode: input lines become\n"
      "                       \"tick key value\" triples; prints a merged\n"
      "                       snapshot report (incompatible with\n"
      "                       --probe/--save/--load)\n"
      "  --topk=K             keys to print in the engine report\n"
      "                       (default 10)\n"
      "  --checkpoint=FILE    (engine mode) write a crash-consistent\n"
      "                       checkpoint after the stream ends\n"
      "  --restore=FILE       (engine mode) restore from a checkpoint\n"
      "                       before ingesting (decay/backend/epsilon must\n"
      "                       match the checkpointed run)\n"
      "  --checkpoint-dir=DIR (engine mode) incremental checkpoint log:\n"
      "                       resume from DIR's committed manifest if one\n"
      "                       exists, then commit one incremental segment\n"
      "                       generation after the stream ends (only keys\n"
      "                       dirtied this run are written)\n"
      "  --promote-from=DIR   (engine mode) warm-standby failover: catch a\n"
      "                       follower up on DIR's checkpoint log, promote\n"
      "                       it, and continue ingesting on the promoted\n"
      "                       engine\n");
}

StatusOr<DecayPtr> ParseDecay(const std::string& spec) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("decay spec needs KIND:PARAM");
  }
  const std::string kind = spec.substr(0, colon);
  const double param = std::atof(spec.c_str() + colon + 1);
  if (kind == "exp") return ExponentialDecay::Create(param);
  if (kind == "poly") return PolynomialDecay::Create(param);
  if (kind == "sliwin") {
    return SlidingWindowDecay::Create(static_cast<Tick>(param));
  }
  return Status::InvalidArgument("unknown decay kind: " + kind);
}

StatusOr<Backend> ParseBackend(const std::string& name) {
  if (name == "auto") return Backend::kAuto;
  if (name == "exact") return Backend::kExact;
  if (name == "ewma") return Backend::kEwma;
  if (name == "recent") return Backend::kRecentItems;
  if (name == "ceh") return Backend::kCeh;
  if (name == "coarse") return Backend::kCoarseCeh;
  if (name == "wbmh") return Backend::kWbmh;
  return Status::InvalidArgument("unknown backend: " + name);
}

/// Sharded engine mode: "tick key value" triples -> batch ingest with
/// periodic skew checks -> merged-snapshot report.
int RunEngineMode(DecayPtr decay, Backend backend, double epsilon,
                  uint32_t shards, size_t topk,
                  const std::string& checkpoint_path,
                  const std::string& restore_path,
                  const std::string& checkpoint_dir,
                  const std::string& promote_dir, std::istream& in) {
  ShardedAggregateEngine::Options options;
  options.registry.aggregate = AggregateOptions::Builder()
                                   .backend(backend)
                                   .epsilon(epsilon)
                                   .Build()
                                   .value();
  options.shards = shards;
  StatusOr<std::unique_ptr<ShardedAggregateEngine>> engine =
      Status::FailedPrecondition("engine not created");
  if (!promote_dir.empty()) {
    // Failover path: catch a standby up on the checkpoint log and promote
    // it; the promoted engine then ingests the rest of the stream.
    auto follower = StandbyFollower::Create(decay, options.registry,
                                            promote_dir);
    if (!follower.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   follower.status().ToString().c_str());
      return 1;
    }
    const Status applied = follower->ApplyNew();
    if (!applied.ok()) {
      std::fprintf(stderr, "error: %s\n", applied.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "# standby caught up to generation %llu of %s\n",
                 static_cast<unsigned long long>(
                     follower->applied_generation()),
                 promote_dir.c_str());
    engine = std::move(follower).value().Promote(options);
    if (engine.ok()) {
      std::fprintf(stderr, "# promoted standby -> primary\n");
    }
  } else {
    engine = ShardedAggregateEngine::Create(decay, options);
  }
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  if (!restore_path.empty()) {
    const Status restored = RestoreFromCheckpoint(**engine, restore_path);
    if (!restored.ok()) {
      std::fprintf(stderr, "error: %s\n", restored.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "# restored from %s\n", restore_path.c_str());
  }
  std::unique_ptr<CheckpointLog> ckpt_log;
  if (!checkpoint_dir.empty()) {
    // Incremental mode: resume from the directory's committed manifest if
    // one exists (promote mode already holds that state), track dirtied
    // keys through the run, and commit one segment generation at the end.
    if (promote_dir.empty()) {
      std::ifstream manifest(checkpoint_dir + "/MANIFEST.tds",
                             std::ios::binary);
      if (manifest) {
        const Status restored = RestoreFromCheckpointLog(**engine,
                                                         checkpoint_dir);
        if (!restored.ok()) {
          std::fprintf(stderr, "error: %s\n", restored.ToString().c_str());
          return 1;
        }
        std::fprintf(stderr, "# resumed from checkpoint log %s\n",
                     checkpoint_dir.c_str());
      }
    }
    const Status tracking = (*engine)->EnableCheckpointTracking();
    if (!tracking.ok()) {
      std::fprintf(stderr, "error: %s\n", tracking.ToString().c_str());
      return 1;
    }
    auto opened = CheckpointLog::Create(**engine, checkpoint_dir, {});
    if (!opened.ok()) {
      std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
      return 1;
    }
    ckpt_log = std::make_unique<CheckpointLog>(std::move(opened).value());
  }

  constexpr size_t kBatch = 4096;
  ProducerSessionOptions session_options;
  session_options.staging_capacity = kBatch;
  auto producer = (*engine)->NewProducer(session_options);
  if (!producer.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 producer.status().ToString().c_str());
    return 1;
  }
  std::vector<KeyedItem> batch;
  batch.reserve(kBatch);
  std::string line;
  Tick last_tick = 0;
  uint64_t items = 0;
  size_t line_number = 0;
  const auto flush_batch = [&] {
    if (batch.empty()) return true;
    Status ingested = (*producer)->AddBatch(batch);
    if (ingested.ok()) ingested = (*producer)->Flush();
    if (!ingested.ok()) {
      std::fprintf(stderr, "error: %s\n", ingested.ToString().c_str());
      return false;
    }
    batch.clear();
    // Between batches is the natural rebalance point: the check is a pair
    // of atomic stat reads unless the skew trigger actually fires.
    auto rebalanced = (*engine)->RebalanceIfSkewed();
    if (!rebalanced.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   rebalanced.status().ToString().c_str());
      return false;
    }
    return true;
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    long long tick = 0;
    unsigned long long key = 0;
    unsigned long long value = 0;
    if (!(fields >> tick >> key >> value)) {
      std::fprintf(stderr, "warning: malformed line %zu skipped\n",
                   line_number);
      continue;
    }
    if (tick < last_tick) {
      std::fprintf(stderr,
                   "error: ticks must be non-decreasing (line %zu: %lld)\n",
                   line_number, tick);
      return 1;
    }
    batch.push_back(KeyedItem{key, tick, value});
    last_tick = tick;
    ++items;
    if (batch.size() >= kBatch && !flush_batch()) return 1;
  }
  if (!flush_batch()) return 1;
  const Status flushed = (*engine)->Flush();
  if (!flushed.ok()) {
    std::fprintf(stderr, "error: %s\n", flushed.ToString().c_str());
    return 1;
  }
  if (!checkpoint_path.empty()) {
    const Status written = WriteCheckpoint(**engine, checkpoint_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "# checkpoint -> %s\n", checkpoint_path.c_str());
  }
  if (ckpt_log) {
    const Status committed = ckpt_log->WriteIncremental();
    if (!committed.ok()) {
      std::fprintf(stderr, "error: %s\n", committed.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "# checkpoint log %s: generation %llu, %llu live bytes\n",
                 checkpoint_dir.c_str(),
                 static_cast<unsigned long long>(
                     ckpt_log->manifest().generation),
                 static_cast<unsigned long long>(ckpt_log->LiveBytes()));
  }

  auto merged = (*engine)->Snapshot();
  if (!merged.ok()) {
    std::fprintf(stderr, "error: %s\n", merged.status().ToString().c_str());
    return 1;
  }
  std::printf("# engine: %u shards, %llu items, %zu keys, cut tick %lld, "
              "%llu rebalances\n",
              (*engine)->shards(), static_cast<unsigned long long>(items),
              merged->KeyCount(), static_cast<long long>(merged->cut()),
              static_cast<unsigned long long>((*engine)->Rebalances()));
  const auto stats = (*engine)->Stats();
  for (size_t s = 0; s < stats.size(); ++s) {
    std::printf("# shard %zu: %llu keys, %llu applied\n", s,
                static_cast<unsigned long long>(stats[s].live_keys),
                static_cast<unsigned long long>(stats[s].items_applied));
  }
  for (const auto& [key, weight] : merged->TopK(topk, merged->cut())) {
    std::printf("%llu\t%.6f\n", static_cast<unsigned long long>(key), weight);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string decay_spec = "poly:1.0";
  std::string backend_name = "auto";
  std::string save_path, load_path, input_path;
  std::string checkpoint_path, restore_path;
  std::string checkpoint_dir, promote_dir;
  double epsilon = 0.1;
  Tick probe = 0;
  long long engine_shards = 0;
  size_t topk = 10;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--decay=")) {
      decay_spec = v;
    } else if (const char* v = value_of("--backend=")) {
      backend_name = v;
    } else if (const char* v = value_of("--epsilon=")) {
      epsilon = std::atof(v);
    } else if (const char* v = value_of("--probe=")) {
      probe = std::atoll(v);
    } else if (const char* v = value_of("--save=")) {
      save_path = v;
    } else if (const char* v = value_of("--load=")) {
      load_path = v;
    } else if (const char* v = value_of("--engine=")) {
      engine_shards = std::atoll(v);
    } else if (const char* v = value_of("--topk=")) {
      topk = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--checkpoint=")) {
      checkpoint_path = v;
    } else if (const char* v = value_of("--restore=")) {
      restore_path = v;
    } else if (const char* v = value_of("--checkpoint-dir=")) {
      checkpoint_dir = v;
    } else if (const char* v = value_of("--promote-from=")) {
      promote_dir = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      input_path = arg;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  auto decay = ParseDecay(decay_spec);
  if (!decay.ok()) {
    std::fprintf(stderr, "error: %s\n", decay.status().ToString().c_str());
    return 2;
  }
  auto backend = ParseBackend(backend_name);
  if (!backend.ok()) {
    std::fprintf(stderr, "error: %s\n", backend.status().ToString().c_str());
    return 2;
  }

  if (engine_shards != 0) {
    if (engine_shards < 1) {
      std::fprintf(stderr, "error: --engine needs a positive shard count\n");
      return 2;
    }
    if (probe != 0 || !save_path.empty() || !load_path.empty()) {
      std::fprintf(stderr,
                   "error: --engine is incompatible with "
                   "--probe/--save/--load\n");
      return 2;
    }
    std::ifstream engine_file;
    std::istream* engine_in = &std::cin;
    if (!input_path.empty()) {
      engine_file.open(input_path);
      if (!engine_file) {
        std::fprintf(stderr, "error: cannot open %s\n", input_path.c_str());
        return 1;
      }
      engine_in = &engine_file;
    }
    if (!promote_dir.empty() && !restore_path.empty()) {
      std::fprintf(stderr,
                   "error: --promote-from is incompatible with --restore\n");
      return 2;
    }
    return RunEngineMode(std::move(decay).value(), *backend, epsilon,
                         static_cast<uint32_t>(engine_shards), topk,
                         checkpoint_path, restore_path, checkpoint_dir,
                         promote_dir, *engine_in);
  }
  if (!checkpoint_path.empty() || !restore_path.empty() ||
      !checkpoint_dir.empty() || !promote_dir.empty()) {
    std::fprintf(stderr,
                 "error: --checkpoint/--restore/--checkpoint-dir/"
                 "--promote-from require --engine mode\n");
    return 2;
  }

  std::unique_ptr<DecayedAggregate> sum;
  if (!load_path.empty()) {
    std::ifstream in(load_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", load_path.c_str());
      return 1;
    }
    std::ostringstream blob;
    blob << in.rdbuf();
    auto restored = DecodeDecayedSum(decay.value(), blob.str());
    if (!restored.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
    sum = std::move(restored).value();
  } else {
    const AggregateOptions options = AggregateOptions::Builder()
                                     .backend(*backend)
                                     .epsilon(epsilon)
                                     .Build()
                                     .value();
    auto created = MakeDecayedSum(decay.value(), options);
    if (!created.ok()) {
      std::fprintf(stderr, "error: %s\n", created.status().ToString().c_str());
      return 1;
    }
    sum = std::move(created).value();
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (!input_path.empty()) {
    file.open(input_path);
    if (!file) {
      std::fprintf(stderr, "error: cannot open %s\n", input_path.c_str());
      return 1;
    }
    in = &file;
  }

  std::string line;
  Tick last_tick = 0;
  Tick next_probe = probe;
  uint64_t items = 0;
  size_t line_number = 0;
  while (std::getline(*in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    long long tick = 0;
    unsigned long long value = 0;
    if (!(fields >> tick >> value)) {
      std::fprintf(stderr, "warning: malformed line %zu skipped\n",
                   line_number);
      continue;
    }
    if (tick < last_tick) {
      std::fprintf(stderr,
                   "error: ticks must be non-decreasing (line %zu: %lld)\n",
                   line_number, tick);
      return 1;
    }
    while (probe > 0 && next_probe < tick) {
      std::printf("%lld\t%.6f\t%zu\n", static_cast<long long>(next_probe),
                  sum->Query(next_probe), sum->StorageBits());
      next_probe += probe;
    }
    sum->Update(tick, value);
    last_tick = tick;
    items += value;
  }

  std::printf("# %s over %s: %llu items through tick %lld\n",
              sum->Name().c_str(), sum->decay()->Name().c_str(),
              static_cast<unsigned long long>(items),
              static_cast<long long>(last_tick));
  if (last_tick > 0) {
    std::printf("%lld\t%.6f\t%zu\n", static_cast<long long>(last_tick),
                sum->Query(last_tick), sum->StorageBits());
  }

  if (!save_path.empty()) {
    std::string blob;
    const Status status = EncodeDecayedSum(*sum, &blob);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::ofstream out(save_path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", save_path.c_str());
      return 1;
    }
    std::printf("# snapshot (%zu bytes) -> %s\n", blob.size(),
                save_path.c_str());
  }
  return 0;
}
