#!/usr/bin/env python3
"""Project-rule linter (docs/CORRECTNESS.md, "Project lint rules").

Mechanical checks for conventions the compiler cannot enforce:

  aggregate-coverage  Every `DecayedAggregate` implementation must declare
                      `AuditInvariants()` in its header and be exercised by
                      name from a fuzz driver in tests/fuzz/.
  raw-mutex           No raw `std::mutex` / `std::shared_mutex` /
                      `std::condition_variable` (or their headers / lock
                      adapters) outside src/util/mutex.h — everything else
                      uses the annotated tds::Mutex wrappers so Clang's
                      thread-safety analysis sees every lock.
  raw-atomic          No raw `std::atomic` / `std::atomic_thread_fence`
                      (or the <atomic> header) outside src/util/atomic.h —
                      everything else uses tds::Atomic / tds::AtomicFence,
                      whose call sites route through the model-check
                      scheduler under -DTDS_MODELCHECK=ON (src/modelcheck).
                      Comments are stripped before matching, so prose may
                      name the std types.
  wall-clock          No wall-clock reads or ambient randomness in src/core
                      or src/engine: ticks come from the caller and
                      randomness from seeded tds::Rng, so every run is
                      replayable. (bench/ and examples/ may read clocks.)
  todo-owner          Every task marker carries an owner — `(name):` after
                      the marker word.
  spin-loop           No yield/pause/sleep retry idioms in src/engine
                      outside wait_strategy.h: every producer or consumer
                      wait goes through StagedWait, which bounds spinning
                      and parks on a condition variable, so an overloaded
                      engine cannot silently burn a core per thread.
  deprecated-ingest   No calls through the deprecated engine-global ingest
                      shims (`Ingest` / `IngestBatch` / `TryUpdateBatch`)
                      outside the engine sources that implement them —
                      producers open a ProducerSession (NewProducer /
                      Add / AddBatch / Flush) so items are pre-grouped per
                      shard off the hot path. Tests that pin the shim
                      contracts carry explicit allow markers.
  fuzz-dual-mode      Every fuzz driver (tests/fuzz/*_fuzz_test.cc) must
                      register both execution modes: a deterministic gtest
                      wrapper (the ctest leg) and an
                      LLVMFuzzerTestOneInput entry point (the libFuzzer
                      leg), be wired through tds_add_fuzz_test() in
                      tests/fuzz/CMakeLists.txt, and ship a seed corpus
                      under tests/fuzz/corpus/<driver>/.

Usage:
  tools/tds_lint.py [--root DIR]     lint the tree (default: repo root)
  tools/tds_lint.py --selftest       prove each rule rejects a violation
                                     (runs against tools/lint_fixtures/)

Exit status: 0 clean, 1 violations (printed one per line as
`path:line: [rule] message`), 2 usage/internal error.

A line may opt out with a trailing `tds-lint: allow(<rule>)` marker; the
marker is for generated or quoted code, not for silencing real findings —
reviews treat new markers like new suppressions. (The word this file's
rules hunt for is spelled piecewise throughout so the linter never flags
its own source.)
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

TODO_WORD = "TO" + "DO"

CXX_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}
TEXT_SUFFIXES = CXX_SUFFIXES | {".py", ".sh", ".cmake", ".txt", ".yml"}

RAW_MUTEX_PATTERN = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|scoped_lock|unique_lock|"
    r"shared_lock)\b"
    r"|#\s*include\s*<(mutex|shared_mutex|condition_variable)>"
)

RAW_ATOMIC_PATTERN = re.compile(
    r"std::atomic(_flag)?\s*<"
    r"|std::atomic_flag\b"
    r"|std::atomic_thread_fence\s*\("
    r"|std::atomic_signal_fence\s*\("
    r"|#\s*include\s*<atomic>"
)

WALL_CLOCK_PATTERN = re.compile(
    r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
    r"|\bgettimeofday\s*\("
    r"|\btime\s*\(\s*(NULL|nullptr|0)?\s*\)"
    r"|\b(std::)?s?rand\s*\("
    r"|std::random_device"
)

TODO_PATTERN = re.compile(r"\b" + TODO_WORD + r"\b(?!\()")

SPIN_PATTERN = re.compile(
    r"std::this_thread::(yield|sleep_for|sleep_until)\s*\("
    r"|\b_mm_pause\s*\("
    r"|__builtin_ia32_pause\s*\("
)

AGGREGATE_DECL_PATTERN = re.compile(
    r"class\s+(\w+)\s*(?::\s*public\s+DecayedAggregate)"
)

AUDIT_DECL_PATTERN = re.compile(r"\bStatus\s+AuditInvariants\s*\(\s*\)")

DEPRECATED_INGEST_PATTERN = re.compile(
    r"(?:->|\.)\s*(Ingest|IngestBatch|TryUpdateBatch)\s*\("
)

ALLOW_PATTERN = re.compile(r"tds-lint:\s*allow\(([\w-]+)\)")


class Violation:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allowed(rule: str, line: str) -> bool:
    match = ALLOW_PATTERN.search(line)
    return match is not None and match.group(1) == rule


def iter_source_files(root: Path, subdirs, suffixes):
    for subdir in subdirs:
        base = root / subdir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            # Fixture trees are excluded only relative to the scanned root,
            # so the selftest (whose root IS a fixture tree) still sees them.
            if "lint_fixtures" in path.relative_to(root).parts:
                continue
            if path.is_file() and path.suffix in suffixes:
                yield path
            elif path.is_file() and path.name == "CMakeLists.txt":
                yield path


def scan_pattern(rule, pattern, path, message, out, strip_comments=False):
    try:
        text = path.read_text(errors="replace")
    except OSError as err:
        out.append(Violation(rule, path, 0, f"unreadable: {err}"))
        return
    for number, line in enumerate(text.splitlines(), start=1):
        subject = line.split("//", 1)[0] if strip_comments else line
        if pattern.search(subject) and not allowed(rule, line):
            out.append(Violation(rule, path, number, message))


def check_raw_mutex(root: Path, out):
    exempt = root / "src" / "util" / "mutex.h"
    for path in iter_source_files(root, ["src"], CXX_SUFFIXES):
        if path == exempt:
            continue
        scan_pattern(
            "raw-mutex",
            RAW_MUTEX_PATTERN,
            path,
            "raw standard mutex/condvar primitive; use the annotated "
            "wrappers from util/mutex.h",
            out,
        )


def check_raw_atomic(root: Path, out):
    exempt = root / "src" / "util" / "atomic.h"
    for path in iter_source_files(root, ["src"], CXX_SUFFIXES):
        if path == exempt:
            continue
        scan_pattern(
            "raw-atomic",
            RAW_ATOMIC_PATTERN,
            path,
            "raw std::atomic primitive; use tds::Atomic / tds::AtomicFence "
            "from util/atomic.h so the model-check scheduler sees every "
            "operation",
            out,
            strip_comments=True,
        )


def check_wall_clock(root: Path, out):
    for path in iter_source_files(
        root, ["src/core", "src/engine"], CXX_SUFFIXES
    ):
        scan_pattern(
            "wall-clock",
            WALL_CLOCK_PATTERN,
            path,
            "wall-clock or ambient randomness in deterministic code; take "
            "ticks from the caller and randomness from a seeded tds::Rng",
            out,
        )


def check_todo_owner(root: Path, out):
    for path in iter_source_files(
        root,
        ["src", "tests", "tools", "bench", "examples"],
        TEXT_SUFFIXES,
    ):
        scan_pattern(
            "todo-owner",
            TODO_PATTERN,
            path,
            f"{TODO_WORD} without an owner; write {TODO_WORD}(name): ...",
            out,
        )


def check_spin_loop(root: Path, out):
    exempt = root / "src" / "engine" / "wait_strategy.h"
    for path in iter_source_files(root, ["src/engine"], CXX_SUFFIXES):
        if path == exempt:
            continue
        scan_pattern(
            "spin-loop",
            SPIN_PATTERN,
            path,
            "yield/pause/sleep retry idiom outside wait_strategy.h; wait "
            "through StagedWait so stalls stay bounded and parked",
            out,
        )


def check_deprecated_ingest(root: Path, out):
    engine_dir = root / "src" / "engine"
    exempt = {
        engine_dir / "engine.h",
        engine_dir / "engine.cc",
        engine_dir / "producer_session.h",
        engine_dir / "producer_session.cc",
    }
    for path in iter_source_files(
        root, ["src", "tests", "tools", "bench", "examples"], CXX_SUFFIXES
    ):
        if path in exempt:
            continue
        scan_pattern(
            "deprecated-ingest",
            DEPRECATED_INGEST_PATTERN,
            path,
            "call through a deprecated engine-global ingest shim; open a "
            "ProducerSession (NewProducer / Add / AddBatch / Flush) instead",
            out,
        )


def check_aggregate_coverage(root: Path, out):
    fuzz_dir = root / "tests" / "fuzz"
    fuzz_text = ""
    for path in sorted(fuzz_dir.glob("*.cc")) if fuzz_dir.is_dir() else []:
        fuzz_text += path.read_text(errors="replace")
    for path in iter_source_files(root, ["src"], {".h"}):
        text = path.read_text(errors="replace")
        for match in AGGREGATE_DECL_PATTERN.finditer(text):
            name = match.group(1)
            line = text.count("\n", 0, match.start()) + 1
            if allowed("aggregate-coverage", text.splitlines()[line - 1]):
                continue
            if not AUDIT_DECL_PATTERN.search(text):
                out.append(
                    Violation(
                        "aggregate-coverage",
                        path,
                        line,
                        f"{name} implements DecayedAggregate but declares no "
                        "`Status AuditInvariants() const`",
                    )
                )
            if name not in fuzz_text:
                out.append(
                    Violation(
                        "aggregate-coverage",
                        path,
                        line,
                        f"{name} implements DecayedAggregate but no fuzz "
                        "driver in tests/fuzz/ exercises it by name",
                    )
                )


def check_fuzz_dual_mode(root: Path, out):
    fuzz_dir = root / "tests" / "fuzz"
    if not fuzz_dir.is_dir():
        return
    cmake_path = fuzz_dir / "CMakeLists.txt"
    cmake_text = (
        cmake_path.read_text(errors="replace") if cmake_path.is_file() else ""
    )
    for path in sorted(fuzz_dir.glob("*_fuzz_test.cc")):
        name = path.stem
        text = path.read_text(errors="replace")
        if "LLVMFuzzerTestOneInput" not in text:
            out.append(
                Violation(
                    "fuzz-dual-mode",
                    path,
                    1,
                    f"{name} has no LLVMFuzzerTestOneInput entry point; "
                    "every driver must also run under -DTDS_LIBFUZZER=ON",
                )
            )
        if not re.search(r"\bTEST(_F|_P)?\s*\(", text):
            out.append(
                Violation(
                    "fuzz-dual-mode",
                    path,
                    1,
                    f"{name} has no gtest wrapper; every driver must keep "
                    "its deterministic ctest leg",
                )
            )
        if f"tds_add_fuzz_test({name})" not in cmake_text:
            out.append(
                Violation(
                    "fuzz-dual-mode",
                    path,
                    1,
                    f"{name} is not registered via tds_add_fuzz_test() in "
                    "tests/fuzz/CMakeLists.txt",
                )
            )
        corpus = fuzz_dir / "corpus" / name
        if not corpus.is_dir() or not any(corpus.iterdir()):
            out.append(
                Violation(
                    "fuzz-dual-mode",
                    path,
                    1,
                    f"{name} ships no seed corpus under tests/fuzz/corpus/"
                    f"{name}/ (regenerate with tools/make_fuzz_corpus.py)",
                )
            )


def lint(root: Path):
    out = []
    check_raw_mutex(root, out)
    check_raw_atomic(root, out)
    check_wall_clock(root, out)
    check_todo_owner(root, out)
    check_spin_loop(root, out)
    check_deprecated_ingest(root, out)
    check_aggregate_coverage(root, out)
    check_fuzz_dual_mode(root, out)
    return out


def selftest(repo_root: Path) -> int:
    """Each fixture tree must trigger exactly its intended rule — proving
    the checks actually reject violations — and the real tree must be
    clean."""
    fixtures = repo_root / "tools" / "lint_fixtures"
    expected = {
        "raw-mutex": fixtures / "raw_mutex",
        "raw-atomic": fixtures / "raw_atomic",
        "wall-clock": fixtures / "wall_clock",
        "todo-owner": fixtures / "todo_owner",
        "spin-loop": fixtures / "spin_loop",
        "deprecated-ingest": fixtures / "deprecated_ingest",
        "aggregate-coverage": fixtures / "aggregate_coverage",
        "fuzz-dual-mode": fixtures / "fuzz_dual_mode",
    }
    failures = 0
    for rule, tree in expected.items():
        if not tree.is_dir():
            print(f"selftest: missing fixture tree {tree}", file=sys.stderr)
            failures += 1
            continue
        found = lint(tree)
        hits = [v for v in found if v.rule == rule]
        strays = [v for v in found if v.rule != rule]
        if not hits:
            print(
                f"selftest: fixture {tree.name} did NOT trigger rule {rule}",
                file=sys.stderr,
            )
            failures += 1
        if strays:
            for violation in strays:
                print(f"selftest: stray finding: {violation}", file=sys.stderr)
            failures += 1
        if hits and not strays:
            print(f"selftest: {rule}: fixture rejected as intended")
    real = lint(repo_root)
    if real:
        for violation in real:
            print(violation, file=sys.stderr)
        print("selftest: real tree is not clean", file=sys.stderr)
        failures += 1
    else:
        print("selftest: real tree clean")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="tree to lint (default: the repository root)",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="verify each rule rejects its fixture violation, then lint "
        "the real tree",
    )
    args = parser.parse_args()
    root = args.root.resolve()
    if args.selftest:
        return selftest(root)
    violations = lint(root)
    for violation in violations:
        print(violation)
    if violations:
        print(f"tds_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("tds_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
