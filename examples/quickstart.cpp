// Quickstart: maintain time-decaying sums and averages of a stream under
// several decay functions, with storage far below the stream length.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/factory.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "decay/sliding_window.h"
#include "stream/generators.h"

int main() {
  using namespace tds;

  // 1. Pick decay functions (paper Section 3).
  DecayPtr expd = ExponentialDecay::Create(0.01).value();     // e^{-0.01 x}
  DecayPtr sliwin = SlidingWindowDecay::Create(500).value();  // last 500
  DecayPtr polyd = PolynomialDecay::Create(1.5).value();      // x^{-1.5}

  // 2. Build maintenance structures. Backend::kAuto picks the paper's
  // storage-optimal algorithm per family: EWMA for EXPD, the Exponential
  // Histogram for SLIWIN, the Weight-Based Merging Histogram for POLYD.
  const AggregateOptions options = AggregateOptions::Builder()
                                       .epsilon(0.1)  // (1 +- 0.1)-approx
                                       .Build()
                                       .value();
  auto expd_sum = MakeDecayedSum(expd, options).value();
  auto sliwin_sum = MakeDecayedSum(sliwin, options).value();
  auto polyd_sum = MakeDecayedSum(polyd, options).value();

  // A decayed *average* (Problem 2.2) weighs observed values by recency.
  auto polyd_avg = MakeDecayedAverage(polyd, options).value();

  // 3. Stream data through: 20,000 ticks of a bursty 0/1-ish source.
  const Stream stream = BurstyStream(20000, 50, 80, 1.5, 7);
  for (const StreamItem& item : stream) {
    expd_sum->Update(item.t, item.value);
    sliwin_sum->Update(item.t, item.value);
    polyd_sum->Update(item.t, item.value);
    polyd_avg.Observe(item.t, item.value);
  }

  // 4. Query at any time >= the last update.
  const Tick now = StreamEnd(stream);
  std::printf("stream: %llu items over %lld ticks\n\n",
              static_cast<unsigned long long>(StreamTotal(stream)),
              static_cast<long long>(now));
  std::printf("%-28s %14s %12s\n", "structure", "decayed sum", "bits");
  for (const auto* s : {&expd_sum, &sliwin_sum, &polyd_sum}) {
    std::printf("%-28s %14.2f %12zu\n",
                ((*s)->Name() + " / " + (*s)->decay()->Name()).c_str(),
                (*s)->Query(now), (*s)->StorageBits());
  }
  std::printf("%-28s %14.3f %12zu\n", "decayed average / POLYD",
              polyd_avg.Query(now), polyd_avg.StorageBits());

  // 5. Queries keep working as time passes with no new data — the decay
  // does the forgetting. (Query times must be non-decreasing, so evaluate
  // in order.)
  const double at_now = polyd_sum->Query(now);
  const double at_1k = polyd_sum->Query(now + 1000);
  const double at_10k = polyd_sum->Query(now + 10000);
  std::printf("\nPOLYD sum now / +1k / +10k ticks: %.2f / %.2f / %.2f\n",
              at_now, at_1k, at_10k);
  return 0;
}
