// Random Early Detection (paper Section 1.1): a router simulates a queue
// fed by on-off traffic and drops packets probabilistically based on a
// time-decaying average of queue lengths. We compare the classic EWMA
// average against a polynomial-decay average: POLYD keeps memory of a past
// congestion episode longer (without freezing it), producing more cautious
// drop behavior right after a burst ends.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/red.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "util/random.h"

namespace {

struct SimResult {
  double drops = 0;
  double max_queue = 0;
  std::vector<double> avg_trace;
};

SimResult Simulate(tds::RedEstimator red) {
  using namespace tds;
  Rng rng(2718);
  SimResult result;
  double queue = 0.0;
  for (Tick t = 1; t <= 6000; ++t) {
    // On-off arrivals: heavy bursts of ~600 ticks every ~2000 ticks.
    const bool burst = (t % 2000) < 600;
    const double arrivals = burst ? 2.2 + rng.NextDouble() : 0.6;
    const double service = 1.0;
    const double drop_probability =
        red.OnQueueSample(t, static_cast<uint64_t>(queue));
    const double admitted = arrivals * (1.0 - drop_probability);
    result.drops += arrivals - admitted;
    queue = std::max(0.0, queue + admitted - service);
    result.max_queue = std::max(result.max_queue, queue);
    if (t % 400 == 0) result.avg_trace.push_back(red.AverageQueue(t));
  }
  return result;
}

}  // namespace

int main() {
  using namespace tds;
  RedEstimator::Options options;
  options.min_threshold = 5.0;
  options.max_threshold = 20.0;
  options.max_probability = 0.2;

  auto ewma_red =
      RedEstimator::Create(ExponentialDecay::Create(0.02).value(), options)
          .value();
  auto polyd_red =
      RedEstimator::Create(PolynomialDecay::Create(1.2).value(), options)
          .value();

  const SimResult ewma = Simulate(std::move(ewma_red));
  const SimResult polyd = Simulate(std::move(polyd_red));

  std::printf("RED over on-off traffic (6000 ticks, bursts of 600):\n\n");
  std::printf("%-18s %12s %12s\n", "average decay", "dropped", "max queue");
  std::printf("%-18s %12.1f %12.1f\n", "EWMA (classic)", ewma.drops,
              ewma.max_queue);
  std::printf("%-18s %12.1f %12.1f\n", "POLYD alpha=1.2", polyd.drops,
              polyd.max_queue);

  std::printf("\naverage-queue trace (every 400 ticks):\n%-8s %10s %10s\n",
              "tick", "EWMA", "POLYD");
  for (size_t i = 0; i < ewma.avg_trace.size(); ++i) {
    std::printf("%-8zu %10.2f %10.2f\n", (i + 1) * 400, ewma.avg_trace[i],
                polyd.avg_trace[i]);
  }
  std::printf(
      "\nPOLYD's average decays polynomially after each burst: the router\n"
      "stays cautious longer after congestion, while EWMA forgets at a\n"
      "fixed exponential rate.\n");
  return 0;
}
