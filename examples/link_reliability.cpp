// The paper's Figure 1 scenario as an application: an internet gateway
// choosing between two paths based on time-decaying failure ratings
// (Section 1.1 "gateway selection products" + the Section 1.2 example).
//
// L1 suffers a severe 5-hour outage; a day later L2 suffers a mild 30-
// minute outage. A good rating scheme should eventually prefer L2 (its
// failure was less severe), after a transition period right after L2's
// failure. Only smooth sub-exponential decay (here POLYD) does this;
// EXPD freezes the initial verdict forever.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/gateway.h"
#include "decay/exponential.h"
#include "decay/polynomial.h"
#include "util/check.h"

int main() {
  using namespace tds;
  constexpr Tick kDay = 24 * 60;  // minutes

  struct Trace {
    std::string label;
    DecayPtr decay;
  };
  std::vector<Trace> traces = {
      {"EXPD half-life 2d",
       ExponentialDecay::Create(ExponentialDecay::LambdaForHalfLife(2 * kDay))
           .value()},
      {"POLYD alpha=2", PolynomialDecay::Create(2.0).value()},
  };

  for (const Trace& trace : traces) {
    auto selector = GatewaySelector::Create(trace.decay, {}).value();
    const int l1 = selector.AddPath("L1").value();
    const int l2 = selector.AddPath("L2").value();
    // Day 1: L1 down for 5 hours. Day 2: L2 down for 30 minutes.
    TDS_CHECK(selector.ReportBadness(l1, kDay, 5 * 60).ok());
    TDS_CHECK(selector.ReportBadness(l2, 2 * kDay, 30).ok());

    std::printf("\n[%s]\n", trace.label.c_str());
    std::printf("%6s %14s %14s %10s\n", "day", "rating(L1)", "rating(L2)",
                "selected");
    for (int day : {2, 3, 5, 8, 13, 21, 34, 55}) {
      const Tick now = static_cast<Tick>(day) * kDay + 1;
      std::printf("%6d %14.6f %14.6f %10s\n", day,
                  selector.Rating(l1, now).value(),
                  selector.Rating(l2, now).value(),
                  selector.PathName(selector.BestPath(now).value()).c_str());
    }
  }
  std::printf(
      "\nUnder EXPD the selection never changes once both failures are\n"
      "in the past; under POLYD, L1 is preferred just after L2's failure\n"
      "(recency) but L2 emerges as the better path (severity), matching\n"
      "the paper's Figure 1 narrative.\n");
  return 0;
}
