// Carrier-scale usage profiles (paper Section 1.1, the AT&T giga-mining
// application): one decayed usage score per customer, for very many
// customers. This is the WBMH's flagship deployment shape — a single
// shared, stream-independent bucket layout serves every customer, so each
// customer pays only for approximate bucket counts.
#include <cstdio>
#include <vector>

#include "apps/usage_profile.h"
#include "decay/polynomial.h"
#include "util/random.h"

int main() {
  using namespace tds;
  const int kCustomers = 100000;
  const Tick kTicks = 5000;  // e.g. hours of service life

  UsageProfileSet::Options options;
  options.epsilon = 0.5;        // bucketing precision
  options.count_epsilon = 0.5;  // per-bucket count rounding
  auto profiles =
      UsageProfileSet::Create(PolynomialDecay::Create(1.0).value(), options)
          .value();

  // Zipf-ish activity: a few heavy hitters, a long tail.
  Rng rng(31337);
  uint64_t events = 0;
  for (Tick t = 1; t <= kTicks; ++t) {
    const int active = 40;  // customers active this tick
    for (int i = 0; i < active; ++i) {
      const double u = rng.NextOpenDouble();
      const auto customer =
          static_cast<uint64_t>(static_cast<double>(kCustomers) * u * u);
      profiles.Record(customer, t, 1 + rng.NextBelow(5));
      ++events;
    }
  }
  profiles.SyncAll(kTicks);

  std::printf("customers touched : %zu (of %d ids)\n",
              profiles.CustomerCount(), kCustomers);
  std::printf("usage events      : %llu\n",
              static_cast<unsigned long long>(events));
  std::printf("shared layout     : %zu buckets (one copy for everyone)\n",
              profiles.layout().BucketCount());
  std::printf("mean bits/customer: %.1f\n", profiles.MeanCustomerBits());
  std::printf("total storage     : %.2f MB equivalent\n",
              static_cast<double>(profiles.TotalStorageBits()) / 8.0 / 1e6);

  std::printf("\nsample decayed usage scores at t=%lld:\n",
              static_cast<long long>(kTicks));
  for (uint64_t customer : {0u, 1u, 10u, 1000u, 50000u}) {
    std::printf("  customer %-6llu -> %.2f\n",
                static_cast<unsigned long long>(customer),
                profiles.Query(customer, kTicks));
  }
  std::printf(
      "\nBoundary state is shared: per-customer cost is a handful of\n"
      "rounded counters (Section 5's storage argument).\n");
  return 0;
}
