// Custom decay functions through the fully-general path (Theorem 1: the
// CEH maintains *any* decay function). A security-operations team wants
// alert scores that (a) hold full weight for an hour, (b) decay
// polynomially for a week, (c) vanish after 30 days — a shape none of the
// classical families matches. We build it as a CustomDecay, maintain it
// with the factory (which falls back to CEH for non-admissible shapes),
// and persist/restore the summary across "process restarts".
#include <cmath>
#include <cstdio>

#include "core/factory.h"
#include "core/snapshot.h"
#include "decay/custom.h"
#include "util/random.h"

int main() {
  using namespace tds;
  constexpr Tick kHour = 60, kDay = 24 * kHour;

  // Plateau, then polynomial tail, then a hard horizon.
  auto decay = CustomDecay::Create(
                   [](Tick age) -> double {
                     if (age <= kHour) return 1.0;
                     return std::pow(static_cast<double>(age) / kHour, -1.3);
                   },
                   /*horizon=*/30 * kDay, "alert-score")
                   .value();

  const AggregateOptions options = AggregateOptions::Builder()
                                   .epsilon(0.05)
                                   .Build()
                                   .value();
  auto score = MakeDecayedSum(decay, options).value();
  std::printf("decay '%s' -> backend %s (non-admissible shapes fall back\n"
              "to the universal CEH)\n\n",
              decay->Name().c_str(), score->Name().c_str());

  // Two weeks of alerts: routine noise plus one incident burst on day 3,
  // with the score polled at the end of every day (queries may never go
  // backward in time).
  Rng rng(606);
  std::printf("%-8s %14s %10s\n", "day", "alert score", "bits");
  for (Tick t = 1; t <= 14 * kDay; ++t) {
    uint64_t severity = rng.NextBernoulli(0.01) ? 1 + rng.NextBelow(3) : 0;
    if (t >= 3 * kDay && t < 3 * kDay + 2 * kHour) severity += 8;
    if (severity > 0) score->Update(t, severity);
    if (t % kDay == 0 && t >= 3 * kDay) {
      std::printf("%-8lld %14.2f %10zu\n",
                  static_cast<long long>(t / kDay), score->Query(t),
                  score->StorageBits());
    }
  }

  // Persist, "restart", restore, continue: answers are bit-identical.
  std::string blob;
  if (Status status = EncodeDecayedSum(*score, &blob); !status.ok()) {
    std::printf("snapshot failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto restored = DecodeDecayedSum(decay, blob).value();
  const Tick later = 20 * kDay;
  std::printf("\nsnapshot: %zu bytes; score at day 20 before/after restore: "
              "%.4f / %.4f\n",
              blob.size(), score->Query(later), restored->Query(later));
  std::printf("after the 30-day horizon the incident is fully forgotten: "
              "score at day 40 = %.4f\n",
              restored->Query(40 * kDay));
  return 0;
}
