// Circuit holding-time policy (paper Section 1.1, after Keshav et al.):
// keep circuits whose next data burst is imminent, close those expected to
// stay idle. Each circuit's anticipated idle time is a time-decaying
// average of its past idle gaps — recent behavior counts more.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/holding_policy.h"
#include "decay/polynomial.h"
#include "util/check.h"
#include "util/random.h"

int main() {
  using namespace tds;
  auto policy =
      CircuitHoldingPolicy::Create(PolynomialDecay::Create(1.0).value(), {})
          .value();

  // Three circuit personalities over ~3000 ticks:
  //  * streaming: bursts every ~4 ticks (keep open!)
  //  * interactive: bursts every ~40 ticks
  //  * batch: bursts every ~400 ticks (close first)
  //  * shifting: idle gaps shrink from ~200 to ~10 — the decayed average
  //    must follow the recent regime.
  struct Spec {
    std::string id;
    Tick early_gap;
    Tick late_gap;
  };
  const std::vector<Spec> specs = {
      {"streaming", 4, 4},
      {"interactive", 40, 40},
      {"batch", 400, 400},
      {"shifting", 200, 10},
  };
  Rng rng(99);
  for (const Spec& spec : specs) TDS_CHECK(policy.AddCircuit(spec.id).ok());
  for (const Spec& spec : specs) {
    Tick t = 1;
    while (t <= 3000) {
      const Tick gap = t < 1500 ? spec.early_gap : spec.late_gap;
      t += 1 + static_cast<Tick>(rng.NextBelow(
               static_cast<uint64_t>(2 * gap)));
      if (t <= 3000) TDS_CHECK(policy.OnBurst(spec.id, t).ok());
    }
  }

  std::printf("close ordering at t=3000 (close the top first):\n\n");
  std::printf("%-14s %18s\n", "circuit", "anticipated idle");
  for (const auto& [id, score] : policy.CloseOrdering(3000)) {
    std::printf("%-14s %18.1f\n", id.c_str(), score);
  }
  std::printf(
      "\n'batch' should top the list; 'shifting' should rank near\n"
      "'streaming'/'interactive' because the decayed average follows its\n"
      "recent short gaps, not its old long ones.\n");
  return 0;
}
